//! Deterministic control-plane fault injection.
//!
//! The dissertation's threat model (§2.1.3, §5.1.1) has protocol traffic —
//! summaries, acknowledgments, alerts — traverse the *same adversarial
//! network* it polices. A [`FaultPlan`] makes that concrete: per-link
//! probabilities of control-message loss, duplication, reordering and
//! corruption, plus scheduled link flaps and router crash–restart windows.
//!
//! Faults are *benign* in the §2.2.1 taxonomy: they are environmental, not
//! attributable misbehaviour, so the detectors must tolerate them without
//! accusing anyone. They compose with the [`crate::attack`] machinery — a
//! run may have both a compromised router and a lossy control plane.
//!
//! Structural faults (flaps, crashes) affect **every** packet crossing the
//! affected element. The probabilistic faults apply only to
//! [`PacketKind::Control`](crate::packet::PacketKind::Control) packets: the
//! data plane already has congestion and attacks for loss, while the
//! control plane needs its own adversary to exercise retry, dedup and
//! timeout-as-accusation logic. All decisions come from a dedicated RNG
//! seeded from the plan, so a run is reproducible from `(topology seed,
//! fault seed)` alone.

use crate::time::SimTime;
use fatih_topology::{RouterId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Per-link control-message fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a control packet is silently lost on the link.
    pub loss: f64,
    /// Probability a control packet is delivered twice.
    pub duplicate: f64,
    /// Probability a control packet's payload is corrupted in flight
    /// (receivers see a failed integrity check, as with a MAC mismatch).
    pub corrupt: f64,
    /// Probability a control packet is held back and overtaken by later
    /// traffic (delivered out of order).
    pub reorder: f64,
    /// Maximum extra latency a held-back packet experiences.
    pub reorder_delay: SimTime,
}

impl Default for LinkFaults {
    fn default() -> Self {
        Self {
            loss: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            reorder: 0.0,
            reorder_delay: SimTime::from_ms(10),
        }
    }
}

impl LinkFaults {
    /// A link with no probabilistic faults.
    pub const NONE: LinkFaults = LinkFaults {
        loss: 0.0,
        duplicate: 0.0,
        corrupt: 0.0,
        reorder: 0.0,
        reorder_delay: SimTime::from_ms(10),
    };

    /// Whether any probabilistic fault can fire.
    pub fn is_none(&self) -> bool {
        self.loss == 0.0 && self.duplicate == 0.0 && self.corrupt == 0.0 && self.reorder == 0.0
    }
}

/// A scheduled full outage of one directional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFlap {
    /// Link tail.
    pub from: RouterId,
    /// Link head.
    pub to: RouterId,
    /// Outage start (inclusive).
    pub down_at: SimTime,
    /// Outage end (exclusive).
    pub up_at: SimTime,
}

/// A scheduled crash–restart window of one router. While down, the router
/// forwards nothing and loses everything addressed to or through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashing router.
    pub router: RouterId,
    /// Crash time (inclusive).
    pub down_at: SimTime,
    /// Restart time (exclusive).
    pub up_at: SimTime,
}

/// A deterministic, seed-driven fault schedule for one simulation run.
///
/// # Examples
///
/// ```
/// use fatih_sim::{FaultPlan, LinkFaults, SimTime};
///
/// let plan = FaultPlan::new(7).with_default_link_faults(LinkFaults {
///     loss: 0.10,
///     duplicate: 0.05,
///     ..LinkFaults::default()
/// });
/// assert_eq!(plan.seed(), 7);
/// assert!(plan.quiesced_after() == SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    default_link: LinkFaults,
    per_link: BTreeMap<(RouterId, RouterId), LinkFaults>,
    flaps: Vec<LinkFlap>,
    crashes: Vec<CrashWindow>,
    probabilistic_until: Option<SimTime>,
}

impl FaultPlan {
    /// An empty plan whose fault RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The fault RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the fault probabilities applied to links without an explicit
    /// per-link entry.
    pub fn with_default_link_faults(mut self, faults: LinkFaults) -> Self {
        self.default_link = faults;
        self
    }

    /// Sets the fault probabilities of one directional link.
    pub fn with_link_faults(mut self, from: RouterId, to: RouterId, faults: LinkFaults) -> Self {
        self.per_link.insert((from, to), faults);
        self
    }

    /// Schedules a full outage of `from → to` during `[down_at, up_at)`.
    pub fn with_link_flap(
        mut self,
        from: RouterId,
        to: RouterId,
        down_at: SimTime,
        up_at: SimTime,
    ) -> Self {
        self.flaps.push(LinkFlap {
            from,
            to,
            down_at,
            up_at,
        });
        self
    }

    /// Schedules a crash–restart of `router` during `[down_at, up_at)`.
    pub fn with_crash(mut self, router: RouterId, down_at: SimTime, up_at: SimTime) -> Self {
        self.crashes.push(CrashWindow {
            router,
            down_at,
            up_at,
        });
        self
    }

    /// Stops all probabilistic link faults from `t` on (exclusive). A plan
    /// with this horizon set is *transient*: after
    /// [`quiesced_after`](Self::quiesced_after) the control plane is clean.
    pub fn with_probabilistic_until(mut self, t: SimTime) -> Self {
        self.probabilistic_until = Some(t);
        self
    }

    /// The fault probabilities in force on `from → to` at time `at`.
    pub fn link_faults(&self, from: RouterId, to: RouterId, at: SimTime) -> LinkFaults {
        if let Some(until) = self.probabilistic_until {
            if at >= until {
                return LinkFaults::NONE;
            }
        }
        self.per_link
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Whether `from → to` is flapped down at `at`.
    pub fn link_down(&self, from: RouterId, to: RouterId, at: SimTime) -> bool {
        self.flaps
            .iter()
            .any(|f| f.from == from && f.to == to && f.down_at <= at && at < f.up_at)
    }

    /// Whether `router` is crashed at `at`.
    pub fn router_down(&self, router: RouterId, at: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|c| c.router == router && c.down_at <= at && at < c.up_at)
    }

    /// The time after which no fault is active: the last flap or crash
    /// recovery, or the probabilistic horizon if later. Plans without a
    /// probabilistic horizon never quiesce their link faults; only the
    /// structural end is reported.
    pub fn quiesced_after(&self) -> SimTime {
        let flap_end = self.flaps.iter().map(|f| f.up_at).max();
        let crash_end = self.crashes.iter().map(|c| c.up_at).max();
        flap_end
            .max(crash_end)
            .max(self.probabilistic_until)
            .unwrap_or(SimTime::ZERO)
    }

    /// Scheduled link flaps.
    pub fn flaps(&self) -> &[LinkFlap] {
        &self.flaps
    }

    /// Scheduled crash windows.
    pub fn crashes(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// Draws a randomized *transient* plan over `topo`: every link gets
    /// moderate control-fault probabilities (loss ≤ 0.15, duplication and
    /// reordering ≤ 0.10, corruption ≤ 0.05), a few links flap and at most
    /// one non-terminal router crash–restarts, all strictly before
    /// `horizon`. Identical `(seed, topo, horizon)` yield identical plans.
    ///
    /// The loss bound is chosen so a transport with a ≥ 6-attempt retry
    /// budget exhausts with probability ≤ 0.15⁶ ≈ 1.1 × 10⁻⁵ per message,
    /// preserving the accuracy guarantee the chaos harness asserts.
    pub fn random_transient(seed: u64, topo: &Topology, horizon: SimTime) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_F1A6);
        let mut plan = FaultPlan::new(seed);
        for link in topo.links() {
            plan = plan.with_link_faults(
                link.from,
                link.to,
                LinkFaults {
                    loss: rng.gen_range(0.0..0.15),
                    duplicate: rng.gen_range(0.0..0.10),
                    corrupt: rng.gen_range(0.0..0.05),
                    reorder: rng.gen_range(0.0..0.10),
                    reorder_delay: SimTime::from_ms(rng.gen_range(1u64..20)),
                },
            );
        }
        let links: Vec<_> = topo.links().map(|l| (l.from, l.to)).collect();
        let half = horizon.as_ns() / 2;
        for _ in 0..rng.gen_range(1usize..4) {
            let (from, to) = links[rng.gen_range(0..links.len())];
            let down = SimTime::from_ns(rng.gen_range(0..half.max(1)));
            let up = down + SimTime::from_ns(rng.gen_range(1..half.max(2)));
            plan = plan.with_link_flap(from, to, down, up.min(horizon));
        }
        if rng.gen_bool(0.5) && topo.router_count() > 2 {
            let router = RouterId::from(rng.gen_range(0u32..topo.router_count() as u32));
            let down = SimTime::from_ns(rng.gen_range(0..half.max(1)));
            let up = down + SimTime::from_ns(rng.gen_range(1..half.max(2)));
            plan = plan.with_crash(router, down, up.min(horizon));
        }
        plan.with_probabilistic_until(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatih_topology::builtin;

    #[test]
    fn per_link_overrides_default() {
        let a = RouterId::from(0);
        let b = RouterId::from(1);
        let plan = FaultPlan::new(1)
            .with_default_link_faults(LinkFaults {
                loss: 0.1,
                ..LinkFaults::default()
            })
            .with_link_faults(
                a,
                b,
                LinkFaults {
                    loss: 0.5,
                    ..LinkFaults::default()
                },
            );
        assert_eq!(plan.link_faults(a, b, SimTime::ZERO).loss, 0.5);
        assert_eq!(plan.link_faults(b, a, SimTime::ZERO).loss, 0.1);
        let transient = plan.with_probabilistic_until(SimTime::from_secs(1));
        assert_eq!(transient.link_faults(a, b, SimTime::from_ms(999)).loss, 0.5);
        assert!(transient.link_faults(a, b, SimTime::from_secs(1)).is_none());
    }

    #[test]
    fn flap_and_crash_windows_are_half_open() {
        let a = RouterId::from(0);
        let b = RouterId::from(1);
        let plan = FaultPlan::new(1)
            .with_link_flap(a, b, SimTime::from_ms(10), SimTime::from_ms(20))
            .with_crash(b, SimTime::from_ms(5), SimTime::from_ms(15));
        assert!(!plan.link_down(a, b, SimTime::from_ms(9)));
        assert!(plan.link_down(a, b, SimTime::from_ms(10)));
        assert!(plan.link_down(a, b, SimTime::from_ms(19)));
        assert!(!plan.link_down(a, b, SimTime::from_ms(20)));
        assert!(!plan.link_down(b, a, SimTime::from_ms(15)));
        assert!(plan.router_down(b, SimTime::from_ms(5)));
        assert!(!plan.router_down(b, SimTime::from_ms(15)));
        assert!(!plan.router_down(a, SimTime::from_ms(10)));
        assert_eq!(plan.quiesced_after(), SimTime::from_ms(20));
    }

    #[test]
    fn random_transient_is_deterministic_and_bounded() {
        let topo = builtin::abilene();
        let horizon = SimTime::from_secs(20);
        let p1 = FaultPlan::random_transient(42, &topo, horizon);
        let p2 = FaultPlan::random_transient(42, &topo, horizon);
        assert_eq!(p1, p2);
        let p3 = FaultPlan::random_transient(43, &topo, horizon);
        assert_ne!(p1, p3);
        for link in topo.links() {
            let f = p1.link_faults(link.from, link.to, SimTime::ZERO);
            assert!(f.loss < 0.15 && f.duplicate < 0.10 && f.corrupt < 0.05);
            assert!(p1.link_faults(link.from, link.to, horizon).is_none());
        }
        assert!(p1.quiesced_after() <= horizon);
        assert!(!p1.flaps().is_empty());
    }
}
