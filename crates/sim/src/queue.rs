//! Output-interface queue disciplines: drop-tail FIFO and RED.
//!
//! Protocol χ validates exactly this object (dissertation Figure 6.1): the
//! queue `Q` of an output interface, with a byte limit `q_limit`, fed by the
//! neighbours and drained at link speed. Chapter 6 evaluates both a
//! deterministic drop-tail queue (§6.4) and the probabilistic Random Early
//! Detection discipline (§6.5), whose EWMA average-queue state is faithfully
//! reproduced here because the χ validator must be able to *replay* it.

use rand::rngs::StdRng;
use rand::Rng;

/// RED parameters (Floyd–Jacobson), in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedParams {
    /// No drops while the average queue is below this.
    pub min_threshold: f64,
    /// Forced drop above this average.
    pub max_threshold: f64,
    /// Drop probability as the average reaches `max_threshold`.
    pub max_p: f64,
    /// EWMA weight for the average queue size.
    pub weight: f64,
    /// Mean packet size, used for the idle-time decay.
    pub mean_packet_size: f64,
}

impl Default for RedParams {
    /// Matches the §6.5.3 experiments: thresholds placed so the attack
    /// triggers at 45,000 / 54,000 bytes fall between them.
    fn default() -> Self {
        Self {
            min_threshold: 30_000.0,
            max_threshold: 60_000.0,
            max_p: 0.1,
            weight: 0.002,
            mean_packet_size: 1_000.0,
        }
    }
}

/// Queue discipline configuration for one output interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueDiscipline {
    /// Plain FIFO: drop arrivals that would overflow the byte limit.
    DropTail,
    /// Random Early Detection over the byte-limit FIFO.
    Red(RedParams),
}

/// Verdict for an arriving packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Enqueue the packet.
    Accept,
    /// Drop due to queue overflow (drop-tail) or RED early drop.
    CongestionDrop {
        /// RED's average queue size at the decision, if RED.
        red_avg: Option<f64>,
        /// The RED drop probability that fired (1.0 for overflow).
        drop_probability: f64,
    },
}

/// The byte-accounting state of one output queue.
///
/// The engine owns the actual packet FIFO; this object makes the
/// accept/drop decision and tracks occupancy and RED state.
///
/// # Examples
///
/// ```
/// use fatih_sim::queue::{OutputQueueState, QueueDiscipline, Verdict};
/// use fatih_sim::SimTime;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut q = OutputQueueState::new(QueueDiscipline::DropTail, 3_000, 1_000_000_000);
/// let mut rng = StdRng::seed_from_u64(0);
/// for _ in 0..3 {
///     assert_eq!(q.offer(1_000, SimTime::ZERO, &mut rng), Verdict::Accept);
///     q.commit_enqueue(1_000);
/// }
/// // Fourth kilobyte packet overflows the 3 kB limit:
/// assert!(matches!(q.offer(1_000, SimTime::ZERO, &mut rng),
///                  Verdict::CongestionDrop { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct OutputQueueState {
    discipline: QueueDiscipline,
    limit_bytes: u32,
    len_bytes: u32,
    bandwidth_bps: u64,
    // RED state.
    avg: f64,
    avg_seeded: bool,
    count_since_drop: i64,
    idle_since: Option<crate::time::SimTime>,
}

impl OutputQueueState {
    /// Creates queue state for an interface with the given byte limit and
    /// drain bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if the limit or bandwidth is zero.
    pub fn new(discipline: QueueDiscipline, limit_bytes: u32, bandwidth_bps: u64) -> Self {
        assert!(limit_bytes > 0, "queue limit must be positive");
        assert!(bandwidth_bps > 0, "bandwidth must be positive");
        Self {
            discipline,
            limit_bytes,
            len_bytes: 0,
            bandwidth_bps,
            avg: 0.0,
            avg_seeded: false,
            count_since_drop: -1,
            idle_since: Some(crate::time::SimTime::ZERO),
        }
    }

    /// Current occupancy in bytes.
    pub fn len_bytes(&self) -> u32 {
        self.len_bytes
    }

    /// Configured byte limit.
    pub fn limit_bytes(&self) -> u32 {
        self.limit_bytes
    }

    /// Occupancy as a fraction of the limit.
    pub fn fill_fraction(&self) -> f64 {
        self.len_bytes as f64 / self.limit_bytes as f64
    }

    /// RED's current average queue size, if the discipline is RED.
    pub fn red_avg(&self) -> Option<f64> {
        match self.discipline {
            QueueDiscipline::Red(_) => Some(self.avg),
            QueueDiscipline::DropTail => None,
        }
    }

    /// The configured discipline.
    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// Decides whether an arriving packet of `size` bytes is accepted.
    /// Does **not** change occupancy; call
    /// [`commit_enqueue`](Self::commit_enqueue) after actually enqueueing.
    ///
    /// RED semantics follow Floyd–Jacobson: EWMA update on every arrival
    /// (with idle-time decay), geometric inter-drop spreading via the
    /// `count` variable, forced drop above `max_threshold`, and overflow
    /// drop when the instantaneous queue is full.
    pub fn offer(&mut self, size: u32, now: crate::time::SimTime, rng: &mut StdRng) -> Verdict {
        match self.discipline {
            QueueDiscipline::DropTail => {
                if self.len_bytes + size > self.limit_bytes {
                    Verdict::CongestionDrop {
                        red_avg: None,
                        drop_probability: 1.0,
                    }
                } else {
                    Verdict::Accept
                }
            }
            QueueDiscipline::Red(p) => {
                self.update_avg(&p, now);
                // Hard overflow always drops.
                if self.len_bytes + size > self.limit_bytes {
                    self.count_since_drop = 0;
                    return Verdict::CongestionDrop {
                        red_avg: Some(self.avg),
                        drop_probability: 1.0,
                    };
                }
                if self.avg < p.min_threshold {
                    self.count_since_drop = -1;
                    return Verdict::Accept;
                }
                if self.avg >= p.max_threshold {
                    self.count_since_drop = 0;
                    return Verdict::CongestionDrop {
                        red_avg: Some(self.avg),
                        drop_probability: 1.0,
                    };
                }
                self.count_since_drop += 1;
                let pb =
                    p.max_p * (self.avg - p.min_threshold) / (p.max_threshold - p.min_threshold);
                let denom = 1.0 - self.count_since_drop as f64 * pb;
                let pa = if denom <= 0.0 {
                    1.0
                } else {
                    (pb / denom).min(1.0)
                };
                if rng.gen_bool(pa) {
                    self.count_since_drop = 0;
                    Verdict::CongestionDrop {
                        red_avg: Some(self.avg),
                        drop_probability: pa,
                    }
                } else {
                    Verdict::Accept
                }
            }
        }
    }

    fn update_avg(&mut self, p: &RedParams, now: crate::time::SimTime) {
        if let Some(idle_start) = self.idle_since.take() {
            if self.avg_seeded {
                // Age the average as if m small packets had drained during
                // the idle period.
                let idle_ns = now.since(idle_start).as_ns();
                let drain_ns_per_pkt = p.mean_packet_size * 8.0 * 1e9 / self.bandwidth_bps as f64;
                let m = (idle_ns as f64 / drain_ns_per_pkt).floor().min(1e6) as i32;
                self.avg *= (1.0 - p.weight).powi(m);
            }
        }
        if self.avg_seeded {
            self.avg += p.weight * (self.len_bytes as f64 - self.avg);
        } else {
            self.avg = self.len_bytes as f64;
            self.avg_seeded = true;
        }
    }

    /// Records that a packet of `size` bytes was enqueued.
    ///
    /// # Panics
    ///
    /// Panics if this would exceed the configured limit (the engine must
    /// only commit accepted offers).
    pub fn commit_enqueue(&mut self, size: u32) {
        assert!(
            self.len_bytes + size <= self.limit_bytes,
            "enqueue past limit: {} + {size} > {}",
            self.len_bytes,
            self.limit_bytes
        );
        self.len_bytes += size;
    }

    /// Records that a packet of `size` bytes finished transmission and left
    /// the queue; `now` marks the start of a possible idle period.
    ///
    /// # Panics
    ///
    /// Panics on underflow (dequeue without matching enqueue).
    pub fn commit_dequeue(&mut self, size: u32, now: crate::time::SimTime) {
        assert!(self.len_bytes >= size, "queue byte underflow");
        self.len_bytes -= size;
        if self.len_bytes == 0 {
            self.idle_since = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn drop_tail_accepts_until_full() {
        let mut q = OutputQueueState::new(QueueDiscipline::DropTail, 2500, 1_000_000);
        let mut r = rng();
        assert_eq!(q.offer(1000, SimTime::ZERO, &mut r), Verdict::Accept);
        q.commit_enqueue(1000);
        assert_eq!(q.offer(1000, SimTime::ZERO, &mut r), Verdict::Accept);
        q.commit_enqueue(1000);
        assert!(matches!(
            q.offer(1000, SimTime::ZERO, &mut r),
            Verdict::CongestionDrop {
                drop_probability, ..
            } if drop_probability == 1.0
        ));
        // A smaller packet still fits.
        assert_eq!(q.offer(500, SimTime::ZERO, &mut r), Verdict::Accept);
    }

    #[test]
    fn dequeue_frees_space() {
        let mut q = OutputQueueState::new(QueueDiscipline::DropTail, 1000, 1_000_000);
        let mut r = rng();
        q.commit_enqueue(1000);
        assert!(matches!(
            q.offer(1, SimTime::ZERO, &mut r),
            Verdict::CongestionDrop { .. }
        ));
        q.commit_dequeue(1000, SimTime::from_ms(1));
        assert_eq!(q.offer(1000, SimTime::from_ms(1), &mut r), Verdict::Accept);
    }

    #[test]
    fn red_no_drops_below_min_threshold() {
        let p = RedParams::default();
        let mut q = OutputQueueState::new(QueueDiscipline::Red(p), 90_000, 100_000_000);
        let mut r = rng();
        // Stay well below min_threshold: 10 packets of 1000 B.
        for i in 0..10 {
            let v = q.offer(1000, SimTime::from_us(i * 100), &mut r);
            assert_eq!(v, Verdict::Accept, "packet {i}");
            q.commit_enqueue(1000);
        }
        assert!(q.red_avg().unwrap() < p.min_threshold);
    }

    #[test]
    fn red_drops_probabilistically_between_thresholds() {
        let p = RedParams::default();
        let mut q = OutputQueueState::new(QueueDiscipline::Red(p), 90_000, 100_000_000);
        let mut r = rng();
        // Pump the queue into the 30k..60k band and hold it there.
        let mut drops = 0;
        let mut offers = 0;
        for i in 0..5_000u64 {
            match q.offer(1000, SimTime::from_us(i), &mut r) {
                Verdict::Accept => {
                    q.commit_enqueue(1000);
                    // Drain to hold occupancy around 45 kB.
                    if q.len_bytes() > 45_000 {
                        q.commit_dequeue(1000, SimTime::from_us(i));
                    }
                }
                Verdict::CongestionDrop { red_avg, .. } => {
                    drops += 1;
                    assert!(red_avg.unwrap() >= p.min_threshold);
                }
            }
            offers += 1;
        }
        assert!(drops > 0, "expected early drops");
        assert!(drops < offers / 2, "too many drops: {drops}/{offers}");
    }

    #[test]
    fn red_forced_drop_above_max_threshold() {
        let p = RedParams {
            min_threshold: 1_000.0,
            max_threshold: 2_000.0,
            weight: 1.0, // avg == instantaneous for the test
            ..RedParams::default()
        };
        let mut q = OutputQueueState::new(QueueDiscipline::Red(p), 90_000, 100_000_000);
        let mut r = rng();
        for _ in 0..3 {
            if let Verdict::Accept = q.offer(1000, SimTime::ZERO, &mut r) {
                q.commit_enqueue(1000);
            }
        }
        // avg == len >= 2000 now: forced drop.
        assert!(matches!(
            q.offer(1000, SimTime::ZERO, &mut r),
            Verdict::CongestionDrop {
                drop_probability, ..
            } if drop_probability == 1.0
        ));
    }

    #[test]
    fn red_idle_decay_reduces_average() {
        let p = RedParams {
            weight: 0.5,
            ..RedParams::default()
        };
        let mut q = OutputQueueState::new(QueueDiscipline::Red(p), 90_000, 8_000_000); // 1 B/us
        let mut r = rng();
        for i in 0..40 {
            if q.offer(1000, SimTime::from_us(i), &mut r) == Verdict::Accept {
                q.commit_enqueue(1000);
            }
        }
        let avg_before = q.red_avg().unwrap();
        // Drain fully, then go idle a long time.
        let len = q.len_bytes();
        q.commit_dequeue(len, SimTime::from_ms(1));
        let _ = q.offer(1000, SimTime::from_secs(1), &mut r);
        assert!(
            q.red_avg().unwrap() < avg_before / 10.0,
            "idle decay failed: {} -> {}",
            avg_before,
            q.red_avg().unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn dequeue_underflow_panics() {
        let mut q = OutputQueueState::new(QueueDiscipline::DropTail, 1000, 1_000_000);
        q.commit_dequeue(1, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "past limit")]
    fn enqueue_past_limit_panics() {
        let mut q = OutputQueueState::new(QueueDiscipline::DropTail, 1000, 1_000_000);
        q.commit_enqueue(1001);
    }
}
