//! Attack injection: the adversarial capabilities of dissertation §2.2.1.
//!
//! A *traffic-faulty* router "can drop or modify selected (or all) packets,
//! or divert them to other routers", and the Chapter 6 evaluation exercises
//! very particular flavours: dropping a fraction of selected flows
//! (Attack 1, Fig 6.6), dropping only when the output queue is nearly full
//! so losses hide inside congestion (Attacks 2–3, Figs 6.7–6.8), dropping
//! only when RED's *average* queue is high (Figs 6.12–6.15), and targeting a
//! single host's TCP SYNs (Attack 4, Fig 6.9 / Fig 6.16).
//!
//! Protocol-faulty behaviour (lying in reports, §2.2.1) is modeled in
//! `fatih-core`, where the reports live.

use crate::packet::{FlowId, Packet};
use crate::time::SimTime;
use fatih_topology::RouterId;
use std::collections::BTreeSet;

/// Selects the victim packets an attack applies to.
///
/// # Examples
///
/// ```
/// use fatih_sim::attack::VictimFilter;
/// use fatih_sim::packet::FlowId;
/// let filter = VictimFilter::flows([FlowId(1), FlowId(2)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VictimFilter {
    /// If set, only these flows are attacked.
    pub flows: Option<BTreeSet<FlowId>>,
    /// If set, only packets to this destination are attacked.
    pub dst: Option<RouterId>,
    /// If true, only TCP SYN packets are attacked.
    pub syn_only: bool,
}

impl VictimFilter {
    /// Matches every transit packet.
    pub fn all() -> Self {
        Self::default()
    }

    /// Matches the given flows.
    pub fn flows<I: IntoIterator<Item = FlowId>>(flows: I) -> Self {
        Self {
            flows: Some(flows.into_iter().collect()),
            ..Self::default()
        }
    }

    /// Matches packets destined to one host — the victim of the SYN attack.
    pub fn to_destination(dst: RouterId) -> Self {
        Self {
            dst: Some(dst),
            ..Self::default()
        }
    }

    /// Restricts this filter to SYN packets.
    pub fn syn_only(mut self) -> Self {
        self.syn_only = true;
        self
    }

    /// Whether the packet is a victim.
    pub fn matches(&self, p: &Packet) -> bool {
        if let Some(flows) = &self.flows {
            if !flows.contains(&p.flow) {
                return false;
            }
        }
        if let Some(dst) = self.dst {
            if p.dst != dst {
                return false;
            }
        }
        if self.syn_only && !p.is_syn() {
            return false;
        }
        true
    }
}

/// What a compromised router does to a victim packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackKind {
    /// Drop a fraction of victims unconditionally (Attack 1, §6.4.2).
    Drop {
        /// Probability of dropping each victim packet.
        fraction: f64,
    },
    /// Drop victims only while the egress queue's instantaneous occupancy
    /// is at or above `fill` of the limit (Attacks 2–3, §6.4.2 — losses
    /// that try to hide inside plausible congestion).
    DropWhenQueueAbove {
        /// Occupancy fraction threshold in `[0, 1]`.
        fill: f64,
        /// Probability of dropping a victim once triggered.
        fraction: f64,
    },
    /// Drop victims only while RED's average queue size is at or above
    /// `avg_bytes` (Attacks 1–4 of §6.5.3).
    DropWhenAvgQueueAbove {
        /// Average-queue trigger in bytes.
        avg_bytes: f64,
        /// Probability of dropping a victim once triggered.
        fraction: f64,
    },
    /// Rewrite the payload of a fraction of victims (conservation of
    /// content catches this).
    Modify {
        /// Probability of modifying each victim packet.
        fraction: f64,
    },
    /// Hold a fraction of victims for `extra` before forwarding
    /// (conservation of timeliness catches this).
    Delay {
        /// Added latency.
        extra: SimTime,
        /// Probability of delaying each victim packet.
        fraction: f64,
    },
    /// Forward a fraction of victims to the wrong neighbour (misrouting —
    /// an instance of loss + fabrication, §2.2.1).
    Misroute {
        /// Probability of misrouting each victim packet.
        fraction: f64,
    },
}

/// A configured attack at one compromised router.
#[derive(Debug, Clone, PartialEq)]
pub struct Attack {
    /// Which packets are victims.
    pub victims: VictimFilter,
    /// What happens to them.
    pub kind: AttackKind,
}

impl Attack {
    /// Convenience: drop `fraction` of the given flows (Attack 1).
    pub fn drop_flows<I: IntoIterator<Item = FlowId>>(flows: I, fraction: f64) -> Self {
        Self {
            victims: VictimFilter::flows(flows),
            kind: AttackKind::Drop { fraction },
        }
    }

    /// Convenience: the SYN-targeting attack of Fig 6.9 / Fig 6.16.
    pub fn drop_syns_to(dst: RouterId) -> Self {
        Self {
            victims: VictimFilter::to_destination(dst).syn_only(),
            kind: AttackKind::Drop { fraction: 1.0 },
        }
    }
}

/// The engine-side decision for one packet after attack evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum AttackAction {
    Forward,
    Drop,
    Modify,
    Delay(SimTime),
    Misroute,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketId, PacketKind};

    fn pkt(flow: u32, dst: u32, kind: PacketKind) -> Packet {
        Packet {
            id: PacketId(1),
            src: RouterId::from(0),
            dst: RouterId::from(dst),
            flow: FlowId(flow),
            kind,
            size: 1000,
            seq: 0,
            payload_tag: 0,
            ttl: 64,
            created_at: SimTime::ZERO,
        }
    }

    #[test]
    fn all_matches_everything() {
        let f = VictimFilter::all();
        assert!(f.matches(&pkt(1, 2, PacketKind::Data)));
        assert!(f.matches(&pkt(9, 9, PacketKind::TcpSyn)));
    }

    #[test]
    fn flow_filter() {
        let f = VictimFilter::flows([FlowId(1), FlowId(3)]);
        assert!(f.matches(&pkt(1, 2, PacketKind::Data)));
        assert!(!f.matches(&pkt(2, 2, PacketKind::Data)));
    }

    #[test]
    fn destination_and_syn_filter() {
        let f = VictimFilter::to_destination(RouterId::from(5)).syn_only();
        assert!(f.matches(&pkt(1, 5, PacketKind::TcpSyn)));
        assert!(!f.matches(&pkt(1, 5, PacketKind::TcpData)));
        assert!(!f.matches(&pkt(1, 4, PacketKind::TcpSyn)));
    }

    #[test]
    fn combined_flow_and_dst() {
        let f = VictimFilter {
            flows: Some([FlowId(1)].into_iter().collect()),
            dst: Some(RouterId::from(5)),
            syn_only: false,
        };
        assert!(f.matches(&pkt(1, 5, PacketKind::Data)));
        assert!(!f.matches(&pkt(1, 4, PacketKind::Data)));
        assert!(!f.matches(&pkt(2, 5, PacketKind::Data)));
    }

    #[test]
    fn constructors() {
        let a = Attack::drop_flows([FlowId(1)], 0.2);
        assert_eq!(a.kind, AttackKind::Drop { fraction: 0.2 });
        let s = Attack::drop_syns_to(RouterId::from(3));
        assert!(s.victims.syn_only);
    }
}
