//! Simulation time.
//!
//! The dissertation assumes a synchronous system (§2.1.2, §4.1): clocks
//! synchronized closely enough that routers agree on measurement intervals.
//! The simulator keeps one true nanosecond clock; per-router skew is modeled
//! separately (see [`crate::engine::Network::set_clock_skew`]) so the
//! protocols' tolerance of a few milliseconds of NTP error (§5.3.1) can be
//! exercised.

/// A point in simulated time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use fatih_sim::SimTime;
/// let t = SimTime::from_ms(5) + SimTime::from_us(250);
/// assert_eq!(t.as_ns(), 5_250_000);
/// assert!((t.as_secs_f64() - 0.00525).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// From fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self − earlier`.
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Saturating multiplication — `u64::MAX` ns instead of overflow, so
    /// unbounded retry/backoff arithmetic cannot wrap or panic.
    pub const fn saturating_mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Applies a signed skew, saturating at zero (how a router with a slow
    /// clock timestamps an observation).
    pub fn with_skew(self, skew_ns: i64) -> SimTime {
        if skew_ns >= 0 {
            SimTime(self.0.saturating_add(skew_ns as u64))
        } else {
            SimTime(self.0.saturating_sub(skew_ns.unsigned_abs()))
        }
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::ops::Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl std::fmt::Display for SimTime {
    /// Renders as seconds with millisecond precision.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(1).as_ns(), 1_000_000_000);
        assert_eq!(SimTime::from_ms(1).as_ns(), 1_000_000);
        assert_eq!(SimTime::from_us(1).as_ns(), 1_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_ns(), 500_000_000);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_ms(10);
        let b = SimTime::from_ms(3);
        assert_eq!((a + b).as_ns(), 13_000_000);
        assert!(b < a);
        assert_eq!(a.since(b), SimTime::from_ms(7));
        assert_eq!(b.since(a), SimTime::ZERO);
        assert_eq!(SimTime::from_ms(2) * 3, SimTime::from_ms(6));
    }

    #[test]
    fn saturating_arithmetic_never_wraps() {
        let huge = SimTime::from_ns(u64::MAX / 2);
        assert_eq!(huge.saturating_mul(u64::MAX), SimTime::from_ns(u64::MAX));
        assert_eq!(
            huge.saturating_add(huge).saturating_add(huge),
            SimTime::from_ns(u64::MAX)
        );
        assert_eq!(SimTime::from_ms(3).saturating_mul(4), SimTime::from_ms(12));
    }

    #[test]
    fn skew_application() {
        let t = SimTime::from_ms(10);
        assert_eq!(t.with_skew(1_000_000), SimTime::from_ms(11));
        assert_eq!(t.with_skew(-1_000_000), SimTime::from_ms(9));
        assert_eq!(SimTime::from_ns(5).with_skew(-100), SimTime::ZERO);
    }

    #[test]
    fn display_in_seconds() {
        assert_eq!(format!("{}", SimTime::from_ms(1500)), "1.500s");
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
