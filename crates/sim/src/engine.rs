//! The discrete-event network engine.
//!
//! Models the data plane of §4.1: hop-by-hop forwarding over directional
//! links with output-buffered interfaces, under link-state routes with
//! deterministic tie-breaks. Compromised routers alter their *own
//! forwarding behaviour* per the configured [`Attack`]s (§2.2.1); the
//! response mechanism is modeled with per-pair route overrides (the policy
//! routing of §5.3.1).
//!
//! All simulation is deterministic for a given seed: events are ordered by
//! `(time, sequence-number)` and randomness comes from one seeded RNG.

use crate::agent::AgentState;
use crate::attack::{Attack, AttackAction, AttackKind};
use crate::fault::FaultPlan;
use crate::packet::{FlowId, Packet, PacketId, PacketKind};
use crate::queue::{OutputQueueState, QueueDiscipline, Verdict};
use crate::tap::{DropReason, GroundTruth, SimMetrics, TapEvent};
use crate::time::SimTime;
use fatih_topology::{Path, PathSegment, RouterId, Routes, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Internal event kinds.
#[derive(Debug, Clone)]
pub(crate) enum EventKind {
    /// Packet arrives at a router after link propagation.
    Arrive {
        at: RouterId,
        from: Option<RouterId>,
        packet: Packet,
    },
    /// A transmission on `from → to` completes.
    TxComplete { from: RouterId, to: RouterId },
    /// An agent timer fires.
    AgentTimer { agent: usize, token: u64 },
    /// A maliciously delayed packet resumes forwarding.
    DelayedForward {
        at: RouterId,
        next: RouterId,
        packet: Packet,
    },
}

#[derive(Debug)]
struct EventEntry {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Runtime state of one directional link.
#[derive(Debug)]
struct LinkRt {
    params: fatih_topology::LinkParams,
    queue: OutputQueueState,
    fifo: VecDeque<Packet>,
    busy: bool,
}

/// Installed fault plan plus its dedicated RNG, so fault decisions never
/// perturb the traffic RNG stream (runs with and without faults stay
/// comparable packet-for-packet).
#[derive(Debug)]
struct FaultRt {
    plan: FaultPlan,
    rng: StdRng,
}

/// A control-plane message handed up to the destination router's protocol
/// stack (the simulator's equivalent of a socket delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlDelivery {
    /// Originating router.
    pub from: RouterId,
    /// Destination router (where it was delivered).
    pub to: RouterId,
    /// The network-level packet id.
    pub id: PacketId,
    /// Opaque protocol sequence value given to `send_control`.
    pub seq: u64,
    /// Delivery time.
    pub at: SimTime,
    /// Whether the payload passed its integrity check — corrupted
    /// messages are handed up flagged so transports treat them as losses.
    pub intact: bool,
}

/// The simulated network.
///
/// # Examples
///
/// ```
/// use fatih_sim::{Network, SimTime};
/// use fatih_topology::builtin;
///
/// let mut net = Network::new(builtin::line(3), 42);
/// let a = net.topology().router_by_name("n0").unwrap();
/// let c = net.topology().router_by_name("n2").unwrap();
/// let flow = net.add_cbr_flow(a, c, 1000, SimTime::from_ms(1),
///                             SimTime::ZERO, Some(SimTime::from_ms(100)));
/// net.run_until(SimTime::from_secs(1), |_ev| {});
/// assert!(net.delivered_on_flow(flow) > 90);
/// ```
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    routes: Routes,
    overrides: BTreeMap<(RouterId, RouterId), Path>,
    now: SimTime,
    next_seq: u64,
    events: BinaryHeap<Reverse<EventEntry>>,
    links: BTreeMap<(RouterId, RouterId), LinkRt>,
    attacks: BTreeMap<RouterId, Vec<Attack>>,
    pub(crate) rng: StdRng,
    skews: Vec<i64>,
    metrics: SimMetrics,
    pub(crate) agents: Vec<AgentState>,
    flow_agent: BTreeMap<FlowId, usize>,
    delivered_per_flow: BTreeMap<FlowId, u64>,
    next_packet_id: u64,
    next_flow_id: u32,
    pending_taps: Vec<TapEvent>,
    fault: Option<FaultRt>,
    control_flows: BTreeMap<RouterId, FlowId>,
    control_inbox: Vec<ControlDelivery>,
}

impl Network {
    /// Builds a network over `topo` with drop-tail queues sized from each
    /// link's `queue_limit_bytes`, and a deterministic RNG seed.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let routes = topo.link_state_routes();
        let mut links = BTreeMap::new();
        for l in topo.links() {
            links.insert(
                (l.from, l.to),
                LinkRt {
                    params: l.params,
                    queue: OutputQueueState::new(
                        QueueDiscipline::DropTail,
                        l.params.queue_limit_bytes,
                        l.params.bandwidth_bps,
                    ),
                    fifo: VecDeque::new(),
                    busy: false,
                },
            );
        }
        let n = topo.router_count();
        Self {
            topo,
            routes,
            overrides: BTreeMap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            events: BinaryHeap::new(),
            links,
            attacks: BTreeMap::new(),
            rng: StdRng::seed_from_u64(seed),
            skews: vec![0; n],
            metrics: SimMetrics::default(),
            agents: Vec::new(),
            flow_agent: BTreeMap::new(),
            delivered_per_flow: BTreeMap::new(),
            next_packet_id: 0,
            next_flow_id: 0,
            pending_taps: Vec::new(),
            fault: None,
            control_flows: BTreeMap::new(),
            control_inbox: Vec::new(),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The stable link-state routes (before any overrides).
    pub fn routes(&self) -> &Routes {
        &self.routes
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Ground-truth counters.
    pub fn ground_truth(&self) -> GroundTruth {
        self.metrics.snapshot()
    }

    /// Re-homes the engine's ground-truth counters into `reg` (under
    /// `sim.*` names), carrying over anything already counted, so registry
    /// snapshots taken by a harness include the simulator's ground truth.
    pub fn attach_metrics(&mut self, reg: &fatih_obs::MetricsRegistry) {
        self.metrics.register_into(reg);
    }

    /// Packets delivered on one flow.
    pub fn delivered_on_flow(&self, flow: FlowId) -> u64 {
        self.delivered_per_flow.get(&flow).copied().unwrap_or(0)
    }

    /// Replaces the queue discipline of the `from → to` interface
    /// (occupancy must be zero, i.e. configure before running).
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist or traffic already flowed.
    pub fn set_queue_discipline(
        &mut self,
        from: RouterId,
        to: RouterId,
        discipline: QueueDiscipline,
    ) {
        let link = self
            .links
            .get_mut(&(from, to))
            .unwrap_or_else(|| panic!("no link {from} -> {to}"));
        assert_eq!(link.queue.len_bytes(), 0, "queue already in use");
        link.queue = OutputQueueState::new(
            discipline,
            link.params.queue_limit_bytes,
            link.params.bandwidth_bps,
        );
    }

    /// Overrides the queue byte limit of one interface (before running).
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist or traffic already flowed.
    pub fn set_queue_limit(&mut self, from: RouterId, to: RouterId, limit_bytes: u32) {
        let link = self
            .links
            .get_mut(&(from, to))
            .unwrap_or_else(|| panic!("no link {from} -> {to}"));
        assert_eq!(link.queue.len_bytes(), 0, "queue already in use");
        let disc = link.queue.discipline();
        link.params.queue_limit_bytes = limit_bytes;
        link.queue = OutputQueueState::new(disc, limit_bytes, link.params.bandwidth_bps);
    }

    /// Installs the attack set of a compromised router (replacing any
    /// previous set). An empty vector restores correct behaviour.
    pub fn set_attacks(&mut self, router: RouterId, attacks: Vec<Attack>) {
        if attacks.is_empty() {
            self.attacks.remove(&router);
        } else {
            self.attacks.insert(router, attacks);
        }
    }

    /// Installs a policy-routing override for one (source, destination)
    /// pair: packets of that pair follow `path` instead of the link-state
    /// route (§5.3.1's response mechanism).
    ///
    /// # Panics
    ///
    /// Panics if the path's ends don't match the pair.
    pub fn set_route_override(&mut self, src: RouterId, dst: RouterId, path: Path) {
        assert_eq!(path.source(), src, "override path source mismatch");
        assert_eq!(path.sink(), dst, "override path sink mismatch");
        self.overrides.insert((src, dst), path);
    }

    /// Recomputes the routes of **all** pairs to avoid the given suspected
    /// segments, installing overrides where the route changes. Pairs left
    /// with no compliant route keep no override and will drop with
    /// [`DropReason::NoRoute`] at the point the route vanishes.
    pub fn apply_avoidance(&mut self, excluded: &[PathSegment]) {
        let av = fatih_topology::AvoidingRoutes::new(&self.topo, excluded.to_vec());
        let ids: Vec<RouterId> = self.topo.routers().collect();
        for &s in &ids {
            for &d in &ids {
                if s == d {
                    continue;
                }
                match av.path(s, d) {
                    Some(p) if Some(&p) != self.routes.path(s, d).as_ref() => {
                        self.overrides.insert((s, d), p);
                    }
                    _ => {
                        self.overrides.remove(&(s, d));
                    }
                }
            }
        }
    }

    /// Installs (or clears) the environmental fault plan. Fault decisions
    /// draw from a dedicated RNG seeded from the plan, so the same traffic
    /// seed with different fault seeds perturbs only the control plane.
    /// Composable with [`set_attacks`](Self::set_attacks): a run may have
    /// both a compromised router and a faulty environment.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan.map(|plan| FaultRt {
            rng: StdRng::seed_from_u64(plan.seed() ^ 0x0FA1_7000),
            plan,
        });
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| &f.plan)
    }

    /// Whether `router` is currently crashed under the fault plan.
    pub fn router_crashed(&self, router: RouterId) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|f| f.plan.router_down(router, self.now))
    }

    /// Sends a protocol control message from `src` to `dst` as a
    /// first-class simulated packet ([`PacketKind::Control`]): it is
    /// routed, queued and transmitted like any datagram, experiences
    /// attacks and injected faults, and on delivery is handed up via
    /// [`take_control_deliveries`](Self::take_control_deliveries). `seq`
    /// is an opaque value for the sending protocol (transports encode
    /// message ids in it). A message sent by a crashed router is lost
    /// immediately.
    pub fn send_control(&mut self, src: RouterId, dst: RouterId, size: u32, seq: u64) -> PacketId {
        let flow = match self.control_flows.get(&src) {
            Some(&f) => f,
            None => {
                let f = FlowId(self.next_flow_id);
                self.next_flow_id += 1;
                self.control_flows.insert(src, f);
                f
            }
        };
        self.inject(src, dst, flow, PacketKind::Control, size, seq)
    }

    /// Drains every control message delivered since the last call, in
    /// delivery order.
    pub fn take_control_deliveries(&mut self) -> Vec<ControlDelivery> {
        std::mem::take(&mut self.control_inbox)
    }

    pub(crate) fn push_control_delivery(&mut self, packet: &Packet) {
        self.control_inbox.push(ControlDelivery {
            from: packet.src,
            to: packet.dst,
            id: packet.id,
            seq: packet.seq,
            at: self.now,
            intact: packet.intact(),
        });
    }

    /// Sets a router's clock skew in nanoseconds (positive = fast clock).
    pub fn set_clock_skew(&mut self, router: RouterId, skew_ns: i64) {
        self.skews[router.index()] = skew_ns;
    }

    /// The router-local reading of the current time.
    pub fn local_time(&self, router: RouterId) -> SimTime {
        self.now.with_skew(self.skews[router.index()])
    }

    /// Current occupancy of the `from → to` output queue, in bytes.
    pub fn queue_len(&self, from: RouterId, to: RouterId) -> u32 {
        self.links
            .get(&(from, to))
            .map(|l| l.queue.len_bytes())
            .unwrap_or(0)
    }

    /// RED average of the `from → to` queue, if that queue is RED.
    pub fn red_avg(&self, from: RouterId, to: RouterId) -> Option<f64> {
        self.links.get(&(from, to)).and_then(|l| l.queue.red_avg())
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    pub(crate) fn schedule(&mut self, at: SimTime, kind: EventKind) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(EventEntry {
            time: at,
            seq,
            kind,
        }));
    }

    /// Runs the simulation until `t_end`, feeding every observation to
    /// `tap`. May be called repeatedly with increasing horizons — the
    /// Chapter 5/6 protocols interleave validation rounds this way.
    pub fn run_until<F: FnMut(&TapEvent)>(&mut self, t_end: SimTime, mut tap: F) {
        while let Some(Reverse(top)) = self.events.peek() {
            if top.time > t_end {
                break;
            }
            let Reverse(entry) = self.events.pop().expect("peeked");
            self.now = entry.time;
            self.dispatch(entry.kind);
            for ev in std::mem::take(&mut self.pending_taps) {
                tap(&ev);
            }
        }
        if self.now < t_end {
            self.now = t_end;
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Arrive { at, from, packet } => self.handle_arrival(at, from, packet),
            EventKind::TxComplete { from, to } => self.handle_tx_complete(from, to),
            EventKind::AgentTimer { agent, token } => self.handle_agent_timer(agent, token),
            EventKind::DelayedForward { at, next, packet } => self.enqueue(at, next, packet),
        }
    }

    pub(crate) fn emit(&mut self, ev: TapEvent) {
        match &ev {
            TapEvent::Injected { .. } => self.metrics.injected.inc(),
            TapEvent::Delivered { packet, .. } => {
                self.metrics.delivered.inc();
                *self.delivered_per_flow.entry(packet.flow).or_insert(0) += 1;
            }
            TapEvent::Dropped { reason, .. } => match reason {
                DropReason::Congestion { .. } => self.metrics.congestive_drops.inc(),
                DropReason::Malicious => self.metrics.malicious_drops.inc(),
                DropReason::TtlExpired => self.metrics.ttl_drops.inc(),
                DropReason::NoRoute => self.metrics.no_route_drops.inc(),
                DropReason::Fault => self.metrics.fault_drops.inc(),
            },
            _ => {}
        }
        self.pending_taps.push(ev);
    }

    // ------------------------------------------------------------------
    // Forwarding
    // ------------------------------------------------------------------

    fn handle_arrival(&mut self, at: RouterId, from: Option<RouterId>, packet: Packet) {
        // A crashed router loses everything reaching it, control and data
        // alike — the benign-fault half of the §2.2.1 taxonomy.
        if self
            .fault
            .as_ref()
            .is_some_and(|f| f.plan.router_down(at, self.now))
        {
            self.emit(TapEvent::Dropped {
                router: at,
                next_hop: None,
                packet,
                reason: DropReason::Fault,
                time: self.now,
                queue_len: 0,
            });
            return;
        }
        self.emit(TapEvent::Arrived {
            router: at,
            from,
            packet,
            time: self.now,
        });
        if at == packet.dst {
            self.emit(TapEvent::Delivered {
                router: at,
                packet,
                time: self.now,
            });
            self.deliver_to_agent(packet);
            return;
        }
        self.forward(at, packet, from.is_none());
    }

    /// Injects a freshly built packet at its source.
    pub(crate) fn inject(
        &mut self,
        src: RouterId,
        dst: RouterId,
        flow: FlowId,
        kind: PacketKind,
        size: u32,
        seq: u64,
    ) -> PacketId {
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        let packet = Packet {
            id,
            src,
            dst,
            flow,
            kind,
            size,
            seq,
            payload_tag: id.0.wrapping_mul(0x9E3779B97F4A7C15),
            ttl: Packet::DEFAULT_TTL,
            created_at: self.now,
        };
        self.emit(TapEvent::Injected {
            router: src,
            packet,
            time: self.now,
        });
        if src == dst {
            self.emit(TapEvent::Delivered {
                router: dst,
                packet,
                time: self.now,
            });
            self.deliver_to_agent(packet);
        } else {
            self.forward(src, packet, true);
        }
        id
    }

    fn next_hop_for(&self, at: RouterId, packet: &Packet) -> Option<RouterId> {
        if let Some(p) = self.overrides.get(&(packet.src, packet.dst)) {
            if let Some(next) = p.next_after(at) {
                return Some(next);
            }
            // Router not on the override path (e.g. packet was in flight
            // through the old route when the override landed): fall back to
            // the link-state route from here.
        }
        self.routes.next_hop(at, packet.dst)
    }

    fn forward(&mut self, at: RouterId, mut packet: Packet, is_source: bool) {
        if !is_source {
            if packet.ttl == 0 {
                self.emit(TapEvent::Dropped {
                    router: at,
                    next_hop: None,
                    packet,
                    reason: DropReason::TtlExpired,
                    time: self.now,
                    queue_len: 0,
                });
                return;
            }
            packet.ttl -= 1;
        }
        let Some(mut next) = self.next_hop_for(at, &packet) else {
            self.emit(TapEvent::Dropped {
                router: at,
                next_hop: None,
                packet,
                reason: DropReason::NoRoute,
                time: self.now,
                queue_len: 0,
            });
            return;
        };

        // A compromised router attacks only transit traffic: terminal
        // routers are assumed correct for traffic they originate (§2.1.4).
        if !is_source {
            match self.evaluate_attacks(at, next, &packet) {
                AttackAction::Forward => {}
                AttackAction::Drop => {
                    let qlen = self.queue_len(at, next);
                    self.emit(TapEvent::Dropped {
                        router: at,
                        next_hop: Some(next),
                        packet,
                        reason: DropReason::Malicious,
                        time: self.now,
                        queue_len: qlen,
                    });
                    return;
                }
                AttackAction::Modify => {
                    packet.payload_tag ^= 0x6D61_6C69_6369_6F75;
                    self.metrics.modified.inc();
                }
                AttackAction::Delay(extra) => {
                    let when = self.now + extra;
                    self.schedule(when, EventKind::DelayedForward { at, next, packet });
                    return;
                }
                AttackAction::Misroute => {
                    let alt = self
                        .topo
                        .neighbors(at)
                        .iter()
                        .map(|(n, _)| *n)
                        .find(|&n| n != next);
                    match alt {
                        Some(a) => {
                            self.metrics.misrouted.inc();
                            next = a;
                        }
                        None => {
                            // Nowhere to divert: the attack degenerates to
                            // a drop.
                            let qlen = self.queue_len(at, next);
                            self.emit(TapEvent::Dropped {
                                router: at,
                                next_hop: Some(next),
                                packet,
                                reason: DropReason::Malicious,
                                time: self.now,
                                queue_len: qlen,
                            });
                            return;
                        }
                    }
                }
            }
        }
        self.enqueue(at, next, packet);
    }

    fn evaluate_attacks(&mut self, at: RouterId, next: RouterId, packet: &Packet) -> AttackAction {
        let Some(attacks) = self.attacks.get(&at) else {
            return AttackAction::Forward;
        };
        // Clone the small attack list so `self.rng` and queue state can be
        // consulted without aliasing `self.attacks`.
        let attacks = attacks.clone();
        for a in &attacks {
            if !a.victims.matches(packet) {
                continue;
            }
            let action = match a.kind {
                AttackKind::Drop { fraction } => {
                    if self.rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                        Some(AttackAction::Drop)
                    } else {
                        None
                    }
                }
                AttackKind::DropWhenQueueAbove { fill, fraction } => {
                    let link = self.links.get(&(at, next));
                    let filled = link
                        .map(|l| l.queue.fill_fraction() >= fill)
                        .unwrap_or(false);
                    if filled && self.rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                        Some(AttackAction::Drop)
                    } else {
                        None
                    }
                }
                AttackKind::DropWhenAvgQueueAbove {
                    avg_bytes,
                    fraction,
                } => {
                    let link = self.links.get(&(at, next));
                    let triggered = link
                        .and_then(|l| l.queue.red_avg())
                        .map(|avg| avg >= avg_bytes)
                        .unwrap_or(false);
                    if triggered && self.rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                        Some(AttackAction::Drop)
                    } else {
                        None
                    }
                }
                AttackKind::Modify { fraction } => {
                    if self.rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                        Some(AttackAction::Modify)
                    } else {
                        None
                    }
                }
                AttackKind::Delay { extra, fraction } => {
                    if self.rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                        Some(AttackAction::Delay(extra))
                    } else {
                        None
                    }
                }
                AttackKind::Misroute { fraction } => {
                    if self.rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                        Some(AttackAction::Misroute)
                    } else {
                        None
                    }
                }
            };
            if let Some(act) = action {
                return act;
            }
        }
        AttackAction::Forward
    }

    fn enqueue(&mut self, from: RouterId, to: RouterId, mut packet: Packet) {
        let now = self.now;
        // Environmental faults act at the egress, before queueing:
        // structural outages (flaps, crashes) hit every packet, the
        // probabilistic faults only the control plane. Decisions are
        // computed first so the fault RNG borrow ends before emitting.
        if self.fault.is_some() {
            let (lose, corrupt, duplicate, reorder_extra) = {
                let f = self.fault.as_mut().expect("checked");
                let mut lose = f.plan.link_down(from, to, now) || f.plan.router_down(from, now);
                let mut corrupt = false;
                let mut duplicate = false;
                let mut reorder_extra = None;
                if !lose && packet.kind == PacketKind::Control {
                    let lf = f.plan.link_faults(from, to, now);
                    if !lf.is_none() {
                        lose = lf.loss > 0.0 && f.rng.gen_bool(lf.loss);
                        if !lose {
                            corrupt = lf.corrupt > 0.0 && f.rng.gen_bool(lf.corrupt);
                            duplicate = lf.duplicate > 0.0 && f.rng.gen_bool(lf.duplicate);
                            if lf.reorder > 0.0 && f.rng.gen_bool(lf.reorder) {
                                let span = lf.reorder_delay.as_ns().max(2);
                                reorder_extra = Some(SimTime::from_ns(f.rng.gen_range(1..span)));
                            }
                        }
                    }
                }
                (lose, corrupt, duplicate, reorder_extra)
            };
            if lose {
                let qlen = self.queue_len(from, to);
                self.emit(TapEvent::Dropped {
                    router: from,
                    next_hop: Some(to),
                    packet,
                    reason: DropReason::Fault,
                    time: now,
                    queue_len: qlen,
                });
                return;
            }
            if corrupt {
                packet.payload_tag ^= 0xFA17_C0DE;
                self.metrics.fault_corrupted.inc();
            }
            if duplicate || reorder_extra.is_some() {
                // Ghost copies and held-back packets bypass the queue and
                // arrive after the full link latency, so they are not
                // re-rolled against the fault probabilities (one network
                // traversal, one set of fault decisions).
                let link = self.links.get(&(from, to)).expect("link exists");
                let latency = SimTime::from_ns(link.params.tx_time_ns(packet.size))
                    + SimTime::from_ns(link.params.delay_ns);
                if duplicate {
                    self.metrics.fault_duplicated.inc();
                    self.schedule(
                        now + latency,
                        EventKind::Arrive {
                            at: to,
                            from: Some(from),
                            packet,
                        },
                    );
                }
                if let Some(extra) = reorder_extra {
                    self.schedule(
                        now + latency + extra,
                        EventKind::Arrive {
                            at: to,
                            from: Some(from),
                            packet,
                        },
                    );
                    return;
                }
            }
        }
        let link = self
            .links
            .get_mut(&(from, to))
            .unwrap_or_else(|| panic!("no link {from} -> {to}"));
        match link.queue.offer(packet.size, now, &mut self.rng) {
            Verdict::Accept => {
                link.queue.commit_enqueue(packet.size);
                link.fifo.push_back(packet);
                let qlen = link.queue.len_bytes();
                self.emit(TapEvent::Enqueued {
                    router: from,
                    next_hop: to,
                    packet,
                    time: now,
                    queue_len_after: qlen,
                });
                self.try_start_tx(from, to);
            }
            Verdict::CongestionDrop {
                red_avg,
                drop_probability,
            } => {
                let qlen = link.queue.len_bytes();
                self.emit(TapEvent::Dropped {
                    router: from,
                    next_hop: Some(to),
                    packet,
                    reason: DropReason::Congestion {
                        red_avg,
                        drop_probability,
                    },
                    time: now,
                    queue_len: qlen,
                });
            }
        }
    }

    fn try_start_tx(&mut self, from: RouterId, to: RouterId) {
        let link = self.links.get_mut(&(from, to)).expect("link exists");
        if link.busy {
            return;
        }
        let Some(head) = link.fifo.front() else {
            return;
        };
        link.busy = true;
        let tx = SimTime::from_ns(link.params.tx_time_ns(head.size));
        let when = self.now + tx;
        self.schedule(when, EventKind::TxComplete { from, to });
    }

    fn handle_tx_complete(&mut self, from: RouterId, to: RouterId) {
        let link = self.links.get_mut(&(from, to)).expect("link exists");
        let packet = link.fifo.pop_front().expect("tx of empty queue");
        link.queue.commit_dequeue(packet.size, self.now);
        link.busy = false;
        let delay = SimTime::from_ns(link.params.delay_ns);
        self.emit(TapEvent::Transmitted {
            router: from,
            next_hop: to,
            packet,
            time: self.now,
        });
        let when = self.now + delay;
        self.schedule(
            when,
            EventKind::Arrive {
                at: to,
                from: Some(from),
                packet,
            },
        );
        self.try_start_tx(from, to);
    }

    /// Allocates a fresh flow id and binds it to an agent slot.
    pub(crate) fn register_flow(&mut self, agent: usize) -> FlowId {
        let flow = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        self.flow_agent.insert(flow, agent);
        flow
    }

    pub(crate) fn agent_for_flow(&self, flow: FlowId) -> Option<usize> {
        self.flow_agent.get(&flow).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatih_topology::builtin;

    #[test]
    fn cbr_traffic_is_delivered_end_to_end() {
        let mut net = Network::new(builtin::line(4), 1);
        let a = net.topo.router_by_name("n0").unwrap();
        let d = net.topo.router_by_name("n3").unwrap();
        let flow = net.add_cbr_flow(
            a,
            d,
            1000,
            SimTime::from_ms(1),
            SimTime::ZERO,
            Some(SimTime::from_ms(50)),
        );
        net.run_until(SimTime::from_secs(1), |_| {});
        let t = net.ground_truth();
        assert_eq!(t.injected, 50);
        assert_eq!(t.delivered, 50);
        assert_eq!(net.delivered_on_flow(flow), 50);
        assert_eq!(t.congestive_drops + t.malicious_drops, 0);
    }

    #[test]
    fn taps_observe_the_full_packet_lifecycle() {
        let mut net = Network::new(builtin::line(3), 1);
        let a = net.topo.router_by_name("n0").unwrap();
        let c = net.topo.router_by_name("n2").unwrap();
        net.add_cbr_flow(
            a,
            c,
            500,
            SimTime::from_ms(1),
            SimTime::ZERO,
            Some(SimTime::from_ms(1)),
        );
        let mut kinds = Vec::new();
        net.run_until(SimTime::from_secs(1), |ev| {
            kinds.push(std::mem::discriminant(ev));
        });
        // One packet: Injected, Enqueued(x2), Transmitted(x2),
        // Arrived(x2: at n1 and n2), Delivered.
        assert_eq!(kinds.len(), 8);
    }

    #[test]
    fn bottleneck_queue_drops_by_congestion() {
        // Source link 10x faster than bottleneck; blast packets.
        let topo = builtin::fan_in(
            2,
            fatih_topology::LinkParams {
                bandwidth_bps: 8_000_000, // 1 kB/ms
                queue_limit_bytes: 5_000,
                ..fatih_topology::LinkParams::default()
            },
        );
        let mut net = Network::new(topo, 1);
        let r = net.topo.router_by_name("r").unwrap();
        let rd = net.topo.router_by_name("rd").unwrap();
        for i in 0..2 {
            let s = net.topo.router_by_name(&format!("s{i}")).unwrap();
            net.add_cbr_flow(
                s,
                rd,
                1000,
                SimTime::from_us(300),
                SimTime::ZERO,
                Some(SimTime::from_ms(200)),
            );
        }
        net.run_until(SimTime::from_secs(2), |_| {});
        let t = net.ground_truth();
        assert!(
            t.congestive_drops > 0,
            "expected overflow at the bottleneck"
        );
        assert_eq!(t.malicious_drops, 0);
        assert_eq!(net.queue_len(r, rd), 0, "queue drains by the end");
        assert_eq!(t.injected, t.delivered + t.congestive_drops);
    }

    #[test]
    fn malicious_drop_fraction_counted_as_ground_truth() {
        let mut net = Network::new(builtin::line(4), 3);
        let a = net.topo.router_by_name("n0").unwrap();
        let b = net.topo.router_by_name("n1").unwrap();
        let d = net.topo.router_by_name("n3").unwrap();
        let flow = net.add_cbr_flow(
            a,
            d,
            1000,
            SimTime::from_ms(1),
            SimTime::ZERO,
            Some(SimTime::from_ms(1000)),
        );
        net.set_attacks(b, vec![Attack::drop_flows([flow], 0.2)]);
        net.run_until(SimTime::from_secs(3), |_| {});
        let t = net.ground_truth();
        assert_eq!(t.injected, 1000);
        assert!(
            t.malicious_drops > 120 && t.malicious_drops < 280,
            "~20% of 1000 expected, got {}",
            t.malicious_drops
        );
        assert_eq!(t.delivered + t.malicious_drops, 1000);
    }

    #[test]
    fn route_override_diverts_traffic() {
        let topo = builtin::abilene();
        let mut net = Network::new(topo, 1);
        let sun = net.topo.router_by_name("Sunnyvale").unwrap();
        let ny = net.topo.router_by_name("NewYork").unwrap();
        let kc = net.topo.router_by_name("KansasCity").unwrap();
        let la = net.topo.router_by_name("LosAngeles").unwrap();

        // Default route goes through Kansas City.
        let mut via_kc = 0;
        net.add_cbr_flow(
            sun,
            ny,
            500,
            SimTime::from_ms(10),
            SimTime::ZERO,
            Some(SimTime::from_ms(100)),
        );
        net.run_until(SimTime::from_ms(500), |ev| {
            if let TapEvent::Arrived { router, .. } = ev {
                if *router == kc {
                    via_kc += 1;
                }
            }
        });
        assert!(via_kc > 0);

        // Override to the southern route.
        let av = fatih_topology::AvoidingRoutes::new(
            net.topology(),
            vec![PathSegment::new(vec![
                net.topology().router_by_name("Denver").unwrap(),
                kc,
                net.topology().router_by_name("Indianapolis").unwrap(),
            ])],
        );
        let detour = av.path(sun, ny).unwrap();
        net.set_route_override(sun, ny, detour);
        net.add_cbr_flow(
            sun,
            ny,
            500,
            SimTime::from_ms(10),
            net.now(),
            Some(net.now() + SimTime::from_ms(100)),
        );
        let mut via_kc2 = 0;
        let mut via_la = 0;
        net.run_until(net.now() + SimTime::from_ms(500), |ev| {
            if let TapEvent::Arrived { router, .. } = ev {
                if *router == kc {
                    via_kc2 += 1;
                }
                if *router == la {
                    via_la += 1;
                }
            }
        });
        assert_eq!(via_kc2, 0, "overridden traffic must avoid Kansas City");
        assert!(via_la > 0);
    }

    #[test]
    fn modification_attack_changes_payload() {
        let mut net = Network::new(builtin::line(3), 5);
        let a = net.topo.router_by_name("n0").unwrap();
        let b = net.topo.router_by_name("n1").unwrap();
        let c = net.topo.router_by_name("n2").unwrap();
        let flow = net.add_cbr_flow(
            a,
            c,
            500,
            SimTime::from_ms(1),
            SimTime::ZERO,
            Some(SimTime::from_ms(10)),
        );
        net.set_attacks(
            b,
            vec![Attack {
                victims: crate::attack::VictimFilter::flows([flow]),
                kind: AttackKind::Modify { fraction: 1.0 },
            }],
        );
        let mut injected_tags = std::collections::HashMap::new();
        let mut delivered_modified = 0;
        net.run_until(SimTime::from_secs(1), |ev| match ev {
            TapEvent::Injected { packet, .. } => {
                injected_tags.insert(packet.id, packet.payload_tag);
            }
            TapEvent::Delivered { packet, .. }
                if injected_tags[&packet.id] != packet.payload_tag =>
            {
                delivered_modified += 1;
            }
            _ => {}
        });
        assert_eq!(delivered_modified, 10);
        assert_eq!(net.ground_truth().modified, 10);
    }

    #[test]
    fn delay_attack_adds_latency_without_loss() {
        let mut net = Network::new(builtin::line(3), 5);
        let a = net.topo.router_by_name("n0").unwrap();
        let b = net.topo.router_by_name("n1").unwrap();
        let c = net.topo.router_by_name("n2").unwrap();
        let flow = net.add_cbr_flow(
            a,
            c,
            500,
            SimTime::from_ms(5),
            SimTime::ZERO,
            Some(SimTime::from_ms(50)),
        );
        net.set_attacks(
            b,
            vec![Attack {
                victims: crate::attack::VictimFilter::flows([flow]),
                kind: AttackKind::Delay {
                    extra: SimTime::from_ms(100),
                    fraction: 1.0,
                },
            }],
        );
        let mut max_latency = SimTime::ZERO;
        net.run_until(SimTime::from_secs(2), |ev| {
            if let TapEvent::Delivered { packet, time, .. } = ev {
                max_latency = max_latency.max(time.since(packet.created_at));
            }
        });
        assert_eq!(net.ground_truth().delivered, 10);
        assert!(max_latency >= SimTime::from_ms(100));
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let mut net = Network::new(builtin::line(4), seed);
            let a = net.topo.router_by_name("n0").unwrap();
            let b = net.topo.router_by_name("n1").unwrap();
            let d = net.topo.router_by_name("n3").unwrap();
            let f = net.add_cbr_flow(
                a,
                d,
                1000,
                SimTime::from_ms(1),
                SimTime::ZERO,
                Some(SimTime::from_ms(200)),
            );
            net.set_attacks(b, vec![Attack::drop_flows([f], 0.3)]);
            net.run_until(SimTime::from_secs(1), |_| {});
            net.ground_truth()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).malicious_drops, run(10).malicious_drops);
    }

    #[test]
    fn control_messages_are_routed_and_delivered() {
        let mut net = Network::new(builtin::line(4), 1);
        let a = net.topo.router_by_name("n0").unwrap();
        let d = net.topo.router_by_name("n3").unwrap();
        net.send_control(a, d, 200, 0xABCD);
        net.run_until(SimTime::from_secs(1), |_| {});
        let deliveries = net.take_control_deliveries();
        assert_eq!(deliveries.len(), 1);
        let m = deliveries[0];
        assert_eq!((m.from, m.to, m.seq), (a, d, 0xABCD));
        assert!(m.intact);
        assert!(m.at > SimTime::ZERO, "control crosses real links");
        assert!(net.take_control_deliveries().is_empty(), "drained");
    }

    #[test]
    fn fault_loss_drops_control_but_not_data() {
        let mut net = Network::new(builtin::line(3), 1);
        let a = net.topo.router_by_name("n0").unwrap();
        let b = net.topo.router_by_name("n1").unwrap();
        let c = net.topo.router_by_name("n2").unwrap();
        net.set_fault_plan(Some(FaultPlan::new(9).with_link_faults(
            a,
            b,
            crate::fault::LinkFaults {
                loss: 1.0,
                ..Default::default()
            },
        )));
        net.add_cbr_flow(
            a,
            c,
            500,
            SimTime::from_ms(1),
            SimTime::ZERO,
            Some(SimTime::from_ms(10)),
        );
        for i in 0..10 {
            net.send_control(a, c, 100, i);
        }
        net.run_until(SimTime::from_secs(1), |_| {});
        assert!(net.take_control_deliveries().is_empty());
        let t = net.ground_truth();
        assert_eq!(t.fault_drops, 10, "all control lost");
        assert_eq!(t.delivered, 10, "data untouched by control faults");
    }

    #[test]
    fn fault_duplication_and_corruption_of_control() {
        let mut net = Network::new(builtin::line(2), 1);
        let a = net.topo.router_by_name("n0").unwrap();
        let b = net.topo.router_by_name("n1").unwrap();
        net.set_fault_plan(Some(FaultPlan::new(3).with_link_faults(
            a,
            b,
            crate::fault::LinkFaults {
                duplicate: 1.0,
                corrupt: 1.0,
                ..Default::default()
            },
        )));
        net.send_control(a, b, 100, 7);
        net.run_until(SimTime::from_secs(1), |_| {});
        let deliveries = net.take_control_deliveries();
        assert_eq!(deliveries.len(), 2, "original + ghost copy");
        assert_eq!(deliveries[0].id, deliveries[1].id, "same message twice");
        assert!(deliveries.iter().all(|d| !d.intact), "corruption flagged");
        let t = net.ground_truth();
        assert_eq!(t.fault_duplicated, 1);
        assert_eq!(t.fault_corrupted, 1);
    }

    #[test]
    fn link_flap_downs_all_traffic_then_recovers() {
        let mut net = Network::new(builtin::line(2), 1);
        let a = net.topo.router_by_name("n0").unwrap();
        let b = net.topo.router_by_name("n1").unwrap();
        net.set_fault_plan(Some(FaultPlan::new(1).with_link_flap(
            a,
            b,
            SimTime::ZERO,
            SimTime::from_ms(50),
        )));
        // One packet per ms for 100 ms: first ~50 die, the rest deliver.
        net.add_cbr_flow(
            a,
            b,
            100,
            SimTime::from_ms(1),
            SimTime::ZERO,
            Some(SimTime::from_ms(100)),
        );
        net.run_until(SimTime::from_secs(1), |_| {});
        let t = net.ground_truth();
        assert_eq!(t.injected, 100);
        assert_eq!(t.fault_drops, 50);
        assert_eq!(t.delivered, 50);
    }

    #[test]
    fn crashed_router_loses_transit_traffic_until_restart() {
        let mut net = Network::new(builtin::line(3), 1);
        let a = net.topo.router_by_name("n0").unwrap();
        let b = net.topo.router_by_name("n1").unwrap();
        let c = net.topo.router_by_name("n2").unwrap();
        net.set_fault_plan(Some(FaultPlan::new(1).with_crash(
            b,
            SimTime::from_ms(10),
            SimTime::from_ms(60),
        )));
        net.add_cbr_flow(
            a,
            c,
            100,
            SimTime::from_ms(1),
            SimTime::ZERO,
            Some(SimTime::from_ms(100)),
        );
        net.run_until(SimTime::from_secs(1), |_| {});
        let t = net.ground_truth();
        assert_eq!(t.injected, 100);
        assert!(t.fault_drops >= 49 && t.fault_drops <= 51, "{t:?}");
        assert_eq!(t.delivered + t.fault_drops, 100);
        assert!(!net.router_crashed(b), "restarted by the end");
    }

    #[test]
    fn fault_rng_does_not_perturb_traffic_stream() {
        let run = |faults: bool| {
            let mut net = Network::new(builtin::line(4), 5);
            let a = net.topo.router_by_name("n0").unwrap();
            let b = net.topo.router_by_name("n1").unwrap();
            let d = net.topo.router_by_name("n3").unwrap();
            if faults {
                net.set_fault_plan(Some(FaultPlan::new(77).with_default_link_faults(
                    crate::fault::LinkFaults {
                        loss: 0.5,
                        ..Default::default()
                    },
                )));
            }
            let f = net.add_cbr_flow(
                a,
                d,
                1000,
                SimTime::from_ms(1),
                SimTime::ZERO,
                Some(SimTime::from_ms(500)),
            );
            net.set_attacks(b, vec![Attack::drop_flows([f], 0.3)]);
            net.run_until(SimTime::from_secs(2), |_| {});
            net.ground_truth().malicious_drops
        };
        assert_eq!(run(false), run(true), "attack RNG stream unchanged");
    }

    #[test]
    fn clock_skew_applies() {
        let mut net = Network::new(builtin::line(2), 1);
        let a = net.topo.router_by_name("n0").unwrap();
        net.run_until(SimTime::from_ms(10), |_| {});
        assert_eq!(net.local_time(a), SimTime::from_ms(10));
        net.set_clock_skew(a, 2_000_000);
        assert_eq!(net.local_time(a), SimTime::from_ms(12));
    }
}
