//! Packets and flows.
//!
//! A simulated packet carries the fields the detection protocols care
//! about: an invariant content identity (what fingerprints cover), a size
//! (what queue prediction needs), and a TTL (mutable per hop, excluded from
//! fingerprints exactly as §7.4.2 prescribes for real IP headers).

use crate::time::SimTime;
use fatih_crypto::{Fingerprint, UhashKey};
use fatih_topology::RouterId;

/// Globally unique packet identity (models the unique payload bytes of a
/// real packet; fingerprints cover it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

impl std::fmt::Display for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A traffic flow identity (five-tuple stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Transport-level kind of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Raw datagram (CBR and background traffic).
    Data,
    /// TCP connection request — the packet attack 4 of §6.4.2 targets.
    TcpSyn,
    /// TCP connection accept.
    TcpSynAck,
    /// TCP acknowledgment (possibly pure).
    TcpAck,
    /// TCP payload segment.
    TcpData,
    /// Echo request (Fig 5.7's RTT probe).
    Ping,
    /// Echo reply.
    Pong,
    /// Protocol control message (summaries, acks, alerts): the traffic the
    /// detection protocols themselves send, carried in-band (§5.1.1).
    Control,
}

/// A simulated packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Unique id (content stand-in; fingerprinted).
    pub id: PacketId,
    /// Originating terminal router.
    pub src: RouterId,
    /// Destination terminal router.
    pub dst: RouterId,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Transport kind.
    pub kind: PacketKind,
    /// Wire size in bytes.
    pub size: u32,
    /// Transport sequence number (TCP) or probe number (ping).
    pub seq: u64,
    /// Deterministic content tag; a modification attack rewrites this.
    pub payload_tag: u64,
    /// Remaining hop budget; decremented per hop, NOT fingerprinted
    /// (§7.4.2).
    pub ttl: u8,
    /// Injection time.
    pub created_at: SimTime,
}

impl Packet {
    /// Default TTL, ample for any simulated topology.
    pub const DEFAULT_TTL: u8 = 64;

    /// The payload tag a packet with this id carries when uncorrupted: a
    /// pure function of the id, so receivers can check integrity without a
    /// side table (modelling a MAC check on real payload bytes).
    pub fn expected_tag(id: PacketId) -> u64 {
        id.0.wrapping_mul(0x9E3779B97F4A7C15)
    }

    /// Whether the payload survived transit unmodified.
    pub fn intact(&self) -> bool {
        self.payload_tag == Self::expected_tag(self.id)
    }

    /// The invariant bytes a traffic fingerprint covers: everything except
    /// the mutable TTL and timestamps.
    pub fn invariant_bytes(&self) -> [u8; 40] {
        let mut out = [0u8; 40];
        out[0..8].copy_from_slice(&self.id.0.to_le_bytes());
        out[8..12].copy_from_slice(&u32::from(self.src).to_le_bytes());
        out[12..16].copy_from_slice(&u32::from(self.dst).to_le_bytes());
        out[16..20].copy_from_slice(&self.flow.0.to_le_bytes());
        out[20] = match self.kind {
            PacketKind::Data => 0,
            PacketKind::TcpSyn => 1,
            PacketKind::TcpSynAck => 2,
            PacketKind::TcpAck => 3,
            PacketKind::TcpData => 4,
            PacketKind::Ping => 5,
            PacketKind::Pong => 6,
            PacketKind::Control => 7,
        };
        out[21..25].copy_from_slice(&self.size.to_le_bytes());
        out[25..33].copy_from_slice(&self.seq.to_le_bytes());
        out[33..].copy_from_slice(&self.payload_tag.to_le_bytes()[..7]);
        out
    }

    /// Keyed fingerprint of the invariant content.
    pub fn fingerprint(&self, key: &UhashKey) -> Fingerprint {
        key.fingerprint(&self.invariant_bytes())
    }

    /// Fingerprints many packets under one key via the batched 4-lane
    /// kernel. All invariant encodings share one length, so every full
    /// group of four rides the interleaved path. Bit-identical to calling
    /// [`fingerprint`](Self::fingerprint) per packet.
    pub fn fingerprint_batch(packets: &[&Packet], key: &UhashKey) -> Vec<Fingerprint> {
        let invs: Vec<[u8; 40]> = packets.iter().map(|p| p.invariant_bytes()).collect();
        let msgs: Vec<&[u8]> = invs.iter().map(|inv| &inv[..]).collect();
        key.fingerprint_batch(&msgs)
    }

    /// Whether this is a TCP connection-establishment packet.
    pub fn is_syn(&self) -> bool {
        self.kind == PacketKind::TcpSyn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet {
            id: PacketId(42),
            src: RouterId::from(0),
            dst: RouterId::from(3),
            flow: FlowId(7),
            kind: PacketKind::TcpData,
            size: 1000,
            seq: 5,
            payload_tag: 0xabcdef,
            ttl: Packet::DEFAULT_TTL,
            created_at: SimTime::from_ms(1),
        }
    }

    #[test]
    fn fingerprint_ignores_ttl() {
        let key = UhashKey::from_seed(1);
        let a = sample();
        let mut b = sample();
        b.ttl -= 3; // decremented along the way
        assert_eq!(a.fingerprint(&key), b.fingerprint(&key));
    }

    #[test]
    fn fingerprint_detects_payload_modification() {
        let key = UhashKey::from_seed(1);
        let a = sample();
        let mut b = sample();
        b.payload_tag ^= 1;
        assert_ne!(a.fingerprint(&key), b.fingerprint(&key));
    }

    #[test]
    fn fingerprint_detects_every_invariant_field() {
        let key = UhashKey::from_seed(1);
        let base = sample().fingerprint(&key);
        let mut p = sample();
        p.id = PacketId(43);
        assert_ne!(p.fingerprint(&key), base);
        let mut p = sample();
        p.dst = RouterId::from(4);
        assert_ne!(p.fingerprint(&key), base);
        let mut p = sample();
        p.kind = PacketKind::TcpAck;
        assert_ne!(p.fingerprint(&key), base);
        let mut p = sample();
        p.size += 1;
        assert_ne!(p.fingerprint(&key), base);
        let mut p = sample();
        p.seq += 1;
        assert_ne!(p.fingerprint(&key), base);
    }

    #[test]
    fn is_syn() {
        let mut p = sample();
        assert!(!p.is_syn());
        p.kind = PacketKind::TcpSyn;
        assert!(p.is_syn());
    }
}
