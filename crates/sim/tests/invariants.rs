//! Simulator invariants under randomized configurations.

use fatih_sim::{Attack, Network, SimTime, TapEvent, TcpConfig};
use fatih_topology::{builtin, LinkParams, RouterId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packet conservation: every injected packet is eventually delivered
    /// or dropped (with a recorded cause) once the network drains.
    #[test]
    fn packet_conservation(
        seed in 0u64..1000,
        sources in 1usize..5,
        q_limit in 2_000u32..32_000,
        interval_us in 500u64..4_000,
        drop_pct in 0u32..50,
    ) {
        let topo = builtin::fan_in(sources, LinkParams {
            bandwidth_bps: 8_000_000,
            queue_limit_bytes: q_limit,
            ..LinkParams::default()
        });
        let r = topo.router_by_name("r").unwrap();
        let rd = topo.router_by_name("rd").unwrap();
        let mut net = Network::new(topo, seed);
        let mut flows = Vec::new();
        for i in 0..sources {
            let s = net.topology().router_by_name(&format!("s{i}")).unwrap();
            flows.push(net.add_cbr_flow(
                s, rd, 1000,
                SimTime::from_us(interval_us),
                SimTime::ZERO,
                Some(SimTime::from_secs(2)),
            ));
        }
        if drop_pct > 0 {
            net.set_attacks(r, vec![Attack::drop_flows(flows, drop_pct as f64 / 100.0)]);
        }
        // Far enough that everything drains.
        net.run_until(SimTime::from_secs(60), |_| {});
        let t = net.ground_truth();
        prop_assert_eq!(
            t.injected,
            t.delivered + t.congestive_drops + t.malicious_drops
                + t.ttl_drops + t.no_route_drops,
            "{:?}", t
        );
        prop_assert_eq!(net.queue_len(r, rd), 0, "queue did not drain");
    }

    /// Tap events balance: every delivered packet was Injected, and every
    /// Enqueued packet is eventually Transmitted.
    #[test]
    fn tap_event_balance(seed in 0u64..500, n in 3usize..7) {
        let topo = builtin::line(n);
        let a = topo.router_by_name("n0").unwrap();
        let z = topo.router_by_name(&format!("n{}", n - 1)).unwrap();
        let mut net = Network::new(topo, seed);
        net.add_cbr_flow(a, z, 800, SimTime::from_ms(1), SimTime::ZERO,
                         Some(SimTime::from_ms(500)));
        let mut enq = 0i64;
        let mut tx = 0i64;
        let mut injected = std::collections::BTreeSet::new();
        let mut delivered = std::collections::BTreeSet::new();
        net.run_until(SimTime::from_secs(5), |ev| match ev {
            TapEvent::Enqueued { .. } => enq += 1,
            TapEvent::Transmitted { .. } => tx += 1,
            TapEvent::Injected { packet, .. } => {
                injected.insert(packet.id);
            }
            TapEvent::Delivered { packet, .. } => {
                delivered.insert(packet.id);
            }
            _ => {}
        });
        prop_assert_eq!(enq, tx, "enqueued vs transmitted");
        prop_assert!(delivered.is_subset(&injected));
        prop_assert_eq!(delivered.len(), injected.len(), "clean line loses nothing");
    }

    /// TCP always completes a short transfer despite random loss rates up
    /// to 20% at a transit router.
    #[test]
    fn tcp_completes_under_random_loss(seed in 0u64..200, loss_pct in 0u32..20) {
        let topo = builtin::line(4);
        let a = topo.router_by_name("n0").unwrap();
        let b = topo.router_by_name("n1").unwrap();
        let d = topo.router_by_name("n3").unwrap();
        let mut net = Network::new(topo, seed);
        let flow = net.add_tcp_flow(a, d, TcpConfig::default(), SimTime::ZERO, 50);
        if loss_pct > 0 {
            net.set_attacks(b, vec![Attack::drop_flows([flow], loss_pct as f64 / 100.0)]);
        }
        net.run_until(SimTime::from_secs(300), |_| {});
        let s = net.tcp_stats(flow);
        prop_assert_eq!(s.acked_segments, 50, "{:?}", s);
        prop_assert!(s.completed_at.is_some());
    }

    /// Determinism: identical seeds and configurations produce identical
    /// ground truth; the event stream length matches too.
    #[test]
    fn determinism(seed in 0u64..300) {
        let run = || {
            let topo = builtin::ring(6);
            let ids: Vec<RouterId> = topo.routers().collect();
            let mut net = Network::new(topo, seed);
            let f = net.add_cbr_flow(ids[0], ids[3], 900, SimTime::from_ms(2),
                                     SimTime::ZERO, Some(SimTime::from_secs(1)));
            net.set_attacks(ids[1], vec![Attack::drop_flows([f], 0.25)]);
            let mut events = 0u64;
            net.run_until(SimTime::from_secs(3), |_| events += 1);
            (net.ground_truth(), events)
        };
        prop_assert_eq!(run(), run());
    }
}
