//! Simulator invariants under randomized configurations.
//!
//! Formerly proptest-based; now plain seeded loops so the workspace builds
//! offline. Each case derives its configuration from a deterministic RNG,
//! so failures reproduce exactly from the printed case seed.

use fatih_sim::{Attack, Network, SimTime, TapEvent, TcpConfig};
use fatih_topology::{builtin, LinkParams, RouterId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Packet conservation: every injected packet is eventually delivered
/// or dropped (with a recorded cause) once the network drains.
#[test]
fn packet_conservation() {
    for case in 0u64..24 {
        let mut cfg = StdRng::seed_from_u64(0xC0_0000 + case);
        let seed = cfg.gen_range(0u64..1000);
        let sources = cfg.gen_range(1usize..5);
        let q_limit = cfg.gen_range(2_000u32..32_000);
        let interval_us = cfg.gen_range(500u64..4_000);
        let drop_pct = cfg.gen_range(0u32..50);

        let topo = builtin::fan_in(
            sources,
            LinkParams {
                bandwidth_bps: 8_000_000,
                queue_limit_bytes: q_limit,
                ..LinkParams::default()
            },
        );
        let r = topo.router_by_name("r").unwrap();
        let rd = topo.router_by_name("rd").unwrap();
        let mut net = Network::new(topo, seed);
        let mut flows = Vec::new();
        for i in 0..sources {
            let s = net.topology().router_by_name(&format!("s{i}")).unwrap();
            flows.push(net.add_cbr_flow(
                s,
                rd,
                1000,
                SimTime::from_us(interval_us),
                SimTime::ZERO,
                Some(SimTime::from_secs(2)),
            ));
        }
        if drop_pct > 0 {
            net.set_attacks(r, vec![Attack::drop_flows(flows, drop_pct as f64 / 100.0)]);
        }
        // Far enough that everything drains.
        net.run_until(SimTime::from_secs(60), |_| {});
        let t = net.ground_truth();
        assert_eq!(
            t.injected,
            t.delivered + t.congestive_drops + t.malicious_drops + t.ttl_drops + t.no_route_drops,
            "case {case}: {t:?}"
        );
        assert_eq!(net.queue_len(r, rd), 0, "case {case}: queue did not drain");
    }
}

/// Tap events balance: every delivered packet was Injected, and every
/// Enqueued packet is eventually Transmitted.
#[test]
fn tap_event_balance() {
    for case in 0u64..24 {
        let mut cfg = StdRng::seed_from_u64(0xBA_0000 + case);
        let seed = cfg.gen_range(0u64..500);
        let n = cfg.gen_range(3usize..7);

        let topo = builtin::line(n);
        let a = topo.router_by_name("n0").unwrap();
        let z = topo.router_by_name(&format!("n{}", n - 1)).unwrap();
        let mut net = Network::new(topo, seed);
        net.add_cbr_flow(
            a,
            z,
            800,
            SimTime::from_ms(1),
            SimTime::ZERO,
            Some(SimTime::from_ms(500)),
        );
        let mut enq = 0i64;
        let mut tx = 0i64;
        let mut injected = std::collections::BTreeSet::new();
        let mut delivered = std::collections::BTreeSet::new();
        net.run_until(SimTime::from_secs(5), |ev| match ev {
            TapEvent::Enqueued { .. } => enq += 1,
            TapEvent::Transmitted { .. } => tx += 1,
            TapEvent::Injected { packet, .. } => {
                injected.insert(packet.id);
            }
            TapEvent::Delivered { packet, .. } => {
                delivered.insert(packet.id);
            }
            _ => {}
        });
        assert_eq!(enq, tx, "case {case}: enqueued vs transmitted");
        assert!(delivered.is_subset(&injected), "case {case}");
        assert_eq!(
            delivered.len(),
            injected.len(),
            "case {case}: clean line loses nothing"
        );
    }
}

/// TCP always completes a short transfer despite random loss rates up
/// to 20% at a transit router.
#[test]
fn tcp_completes_under_random_loss() {
    for case in 0u64..24 {
        let mut cfg = StdRng::seed_from_u64(0x7C_0000 + case);
        let seed = cfg.gen_range(0u64..200);
        let loss_pct = cfg.gen_range(0u32..20);

        let topo = builtin::line(4);
        let a = topo.router_by_name("n0").unwrap();
        let b = topo.router_by_name("n1").unwrap();
        let d = topo.router_by_name("n3").unwrap();
        let mut net = Network::new(topo, seed);
        let flow = net.add_tcp_flow(a, d, TcpConfig::default(), SimTime::ZERO, 50);
        if loss_pct > 0 {
            net.set_attacks(b, vec![Attack::drop_flows([flow], loss_pct as f64 / 100.0)]);
        }
        net.run_until(SimTime::from_secs(300), |_| {});
        let s = net.tcp_stats(flow);
        assert_eq!(s.acked_segments, 50, "case {case}: {s:?}");
        assert!(s.completed_at.is_some(), "case {case}");
    }
}

/// Determinism: identical seeds and configurations produce identical
/// ground truth; the event stream length matches too.
#[test]
fn determinism() {
    for seed in [0u64, 7, 42, 128, 299] {
        let run = || {
            let topo = builtin::ring(6);
            let ids: Vec<RouterId> = topo.routers().collect();
            let mut net = Network::new(topo, seed);
            let f = net.add_cbr_flow(
                ids[0],
                ids[3],
                900,
                SimTime::from_ms(2),
                SimTime::ZERO,
                Some(SimTime::from_secs(1)),
            );
            net.set_attacks(ids[1], vec![Attack::drop_flows([f], 0.25)]);
            let mut events = 0u64;
            net.run_until(SimTime::from_secs(3), |_| events += 1);
            (net.ground_truth(), events)
        };
        assert_eq!(run(), run(), "seed {seed}");
    }
}
