//! Figure 5.7: "Fatih in progress" — the system timeline on the Abilene
//! topology. Routing converges, steady coast-to-coast traffic flows with
//! a ~50 ms New York ↔ Sunnyvale RTT, the Kansas City router is
//! compromised at t ≈ 117 s (dropping 20% of transit traffic), Fatih's
//! validators detect within one τ = 5 s round, and after the OSPF delay +
//! hold the new routing table sends traffic via Los Angeles/Houston/
//! Atlanta — RTT rises to ~56 ms and Kansas City carries no more transit
//! traffic.
//!
//! Run with `cargo run --release -p fatih-bench --bin fig5_7`.

use fatih_bench::{render_table, write_csv};
use fatih_core::fatih_system::{FatihConfig, FatihEvent, FatihSystem};
use fatih_crypto::KeyStore;
use fatih_sim::{Attack, AttackKind, Network, SimTime, VictimFilter};
use fatih_topology::builtin;

const CONVERGED_AT: u64 = 55; // OSPF convergence period modeled as idle
const ATTACK_AT: u64 = 117;
const END_AT: u64 = 200;

fn main() {
    let topo = builtin::abilene();
    let mut ks = KeyStore::with_seed(1);
    for r in topo.routers() {
        ks.register(r.into());
    }
    let sun = topo.router_by_name("Sunnyvale").unwrap();
    let ny = topo.router_by_name("NewYork").unwrap();
    let kc = topo.router_by_name("KansasCity").unwrap();

    let mut net = Network::new(topo, 7);
    // "After roughly 55 seconds all routers have agreed on a common
    // topology" — we model the convergence window by starting traffic then.
    let t0 = SimTime::from_secs(CONVERGED_AT);
    net.add_cbr_flow(sun, ny, 1000, SimTime::from_ms(5), t0, None);
    net.add_cbr_flow(ny, sun, 1000, SimTime::from_ms(7), t0, None);
    for (a, b) in [("Seattle", "Atlanta"), ("Denver", "WashingtonDC")] {
        let a = net.topology().router_by_name(a).unwrap();
        let b = net.topology().router_by_name(b).unwrap();
        net.add_cbr_flow(a, b, 800, SimTime::from_ms(9), t0, None);
    }
    let ping = net.add_ping_probe(ny, sun, 100, SimTime::from_ms(500), t0, None);

    // Let the network settle, then hand control to Fatih.
    net.run_until(t0, |_| {});
    let mut system = FatihSystem::new(&net, ks, FatihConfig::default());

    // Clean period until the attack.
    system.run(&mut net, SimTime::from_secs(ATTACK_AT));
    let clean_events = system.timeline().len();

    // Compromise Kansas City: 20% transit drop (§5.3.2).
    net.set_attacks(
        kc,
        vec![Attack {
            victims: VictimFilter::all(),
            kind: AttackKind::Drop { fraction: 0.2 },
        }],
    );
    println!("t={ATTACK_AT:>3}s  ATTACK: KansasCity compromised (drops 20% of transit)");
    system.run(&mut net, SimTime::from_secs(END_AT));

    // Timeline.
    println!("\n== Fatih timeline (Figure 5.7) ==");
    assert_eq!(clean_events, 0, "false detections before the attack");
    for ev in system.timeline() {
        match ev {
            FatihEvent::Detection { at, suspicion } => {
                println!("t={:>7.1}s  detection: {}", at.as_secs_f64(), suspicion);
            }
            FatihEvent::RouteUpdate { at, excluded } => {
                println!(
                    "t={:>7.1}s  new routing table installed ({excluded} path segments excluded)",
                    at.as_secs_f64()
                );
            }
        }
    }

    // RTT series (the right axis of Figure 5.7).
    let rtts = net.ping_rtts(ping);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut last_bucket = 0u64;
    for (sent, rtt) in rtts {
        csv.push(vec![
            format!("{:.3}", sent.as_secs_f64()),
            format!("{:.3}", rtt.as_secs_f64() * 1000.0),
        ]);
        let bucket = sent.as_ns() / 10_000_000_000; // 10 s buckets
        if bucket != last_bucket || rows.is_empty() {
            rows.push(vec![
                format!("{:.0}", sent.as_secs_f64()),
                format!("{:.1}", rtt.as_secs_f64() * 1000.0),
            ]);
            last_bucket = bucket;
        }
    }
    println!("\nNY ↔ Sunnyvale RTT (sampled every ~10 s):");
    println!("{}", render_table(&["t (s)", "RTT (ms)"], &rows));
    if let Some(p) = write_csv("fig5_7_rtt", &["t_s", "rtt_ms"], &csv) {
        println!("(full series: {})", p.display());
    }

    // Verify the headline numbers.
    let before: Vec<f64> = rtts
        .iter()
        .filter(|(s, _)| s.as_secs_f64() < ATTACK_AT as f64)
        .map(|(_, r)| r.as_secs_f64() * 1000.0)
        .collect();
    let after: Vec<f64> = rtts
        .iter()
        .filter(|(s, _)| s.as_secs_f64() > 150.0)
        .map(|(_, r)| r.as_secs_f64() * 1000.0)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nmean RTT before attack: {:.1} ms (paper: ~50 ms)\n\
         mean RTT after reroute: {:.1} ms (paper: ~56 ms)",
        mean(&before),
        mean(&after)
    );
    // §2.4.3: only path segments with *observed* faulty behaviour are
    // excluded, so a uniformly malicious router is isolated progressively —
    // traffic diverted onto its other interfaces is attacked there, gets
    // detected, and those segments are excluded in following rounds. Let
    // the control loop run on until that converges.
    system.run(&mut net, SimTime::from_secs(END_AT + 80));
    let mut via_kc = 0u64;
    net.run_until(net.now() + SimTime::from_secs(5), |ev| {
        if let fatih_sim::TapEvent::Arrived { router, .. } = ev {
            if *router == kc {
                via_kc += 1;
            }
        }
    });
    println!(
        "transit packets through KansasCity once isolation converges: {via_kc} \
         (paper: completely isolated; {} segments excluded)",
        system.excluded_segments().len()
    );
}
