//! Figures 6.11–6.16: Protocol χ validating a RED queue (§6.5), per-round
//! series under the dissertation's five attacks:
//!
//! * `none`     — no attack (Fig 6.11),
//! * `avg45`    — drop selected flows when the average queue exceeds
//!   45,000 bytes (Fig 6.12),
//! * `avg54`    — threshold 54,000 bytes (Fig 6.13),
//! * `avg45p10` — 10% of selected flows above 45,000 (Fig 6.14),
//! * `avg45p05` — 5% above 45,000 (Fig 6.15),
//! * `syn`      — drop a victim's SYNs (Fig 6.16).
//!
//! Run one scenario with
//! `cargo run --release -p fatih-bench --bin fig6_red -- <scenario>`, or
//! all with no argument.

use fatih_bench::{render_table, write_csv, ChiAttack, ChiExperiment, RoundRow, Workload};
use fatih_sim::{RedParams, SimTime};

fn red_params() -> RedParams {
    // Thresholds placed so the paper's 45,000 / 54,000-byte attack
    // triggers sit inside the (min, max) band.
    RedParams {
        min_threshold: 30_000.0,
        max_threshold: 70_000.0,
        // Gentle max_p lets the TCP equilibrium average climb through the
        // paper's 45,000/54,000-byte attack triggers.
        max_p: 0.01,
        weight: 0.002,
        mean_packet_size: 1_000.0,
    }
}

fn scenario(name: &str) -> Option<(ChiAttack, &'static str)> {
    match name {
        "none" => Some((ChiAttack::None, "Fig 6.11: RED, no attack")),
        "avg45" => Some((
            ChiAttack::AvgQueueConditional {
                bytes: 45_000.0,
                fraction: 1.0,
            },
            "Fig 6.12: drop selected flows when avg queue > 45,000 B",
        )),
        "avg54" => Some((
            ChiAttack::AvgQueueConditional {
                bytes: 54_000.0,
                fraction: 1.0,
            },
            "Fig 6.13: drop selected flows when avg queue > 54,000 B",
        )),
        "avg45p10" => Some((
            ChiAttack::AvgQueueConditional {
                bytes: 45_000.0,
                fraction: 0.10,
            },
            "Fig 6.14: drop 10% of selected flows when avg > 45,000 B",
        )),
        "avg45p05" => Some((
            ChiAttack::AvgQueueConditional {
                bytes: 45_000.0,
                fraction: 0.05,
            },
            "Fig 6.15: drop 5% of selected flows when avg > 45,000 B",
        )),
        "syn" => Some((ChiAttack::SynDrop, "Fig 6.16: drop a victim host's SYNs")),
        _ => None,
    }
}

fn run_one(name: &str) {
    let (attack, title) = scenario(name).unwrap_or_else(|| {
        eprintln!("unknown scenario {name}; use none|avg45|avg54|avg45p10|avg45p05|syn");
        std::process::exit(2);
    });
    // TCP background sets RED's operating point; the victim is a
    // constant-rate application flow (it does not back off, so its drops
    // keep accumulating evidence against the router).
    let exp = ChiExperiment {
        attack,
        workload: Workload::Tcp,
        q_limit: 90_000,
        red: Some(red_params()),
        rounds: 12,
        round: SimTime::from_secs(5),
        sources: 12,
        victim_cbr_pps: Some(200),
        ..ChiExperiment::default()
    };
    let out = exp.run();
    println!("== {title} ==");
    let rows: Vec<Vec<String>> = out.rows.iter().map(RoundRow::cells).collect();
    println!("{}", render_table(&RoundRow::headers(), &rows));
    if let Some(p) = write_csv(&format!("fig6_red_{name}"), &RoundRow::headers(), &rows) {
        println!("(csv: {})", p.display());
    }
    println!(
        "ground truth: {} malicious, {} congestive (RED) drops — detected in {}/{} rounds\n",
        out.truth.malicious_drops,
        out.truth.congestive_drops,
        out.detected_rounds(),
        out.rows.len()
    );
    match attack {
        ChiAttack::None => assert!(!out.detected(), "FALSE POSITIVE in the RED no-attack run"),
        _ => assert!(
            out.truth.malicious_drops == 0 || out.detected(),
            "attack escaped detection"
        ),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        for name in ["none", "avg45", "avg54", "avg45p10", "avg45p05", "syn"] {
            run_one(name);
        }
    } else {
        for name in &args {
            run_one(name);
        }
    }
    println!(
        "Paper shape to compare against: RED's probabilistic early drops\n\
         never trigger the detector, while attacks keyed to the *average*\n\
         queue — even at 5% — produce loss patterns inconsistent with the\n\
         replayed RED probabilities and are flagged (dissertation\n\
         Figs 6.11–6.16)."
    );
}
