//! §3.3's trade-off, tabulated: detection time vs communication for the
//! HERZBERG per-packet protocols on a 16-processor path, as the fault
//! position varies.
//!
//! Run with `cargo run --release -p fatih-bench --bin tab_herzberg`.

use fatih_bench::{render_table, write_csv};
use fatih_core::herzberg::{transmit, Variant};
use std::collections::BTreeSet;

const N: usize = 16;

fn main() {
    println!("== §3.3 HERZBERG: ack placement trade-off (path of {N} processors) ==\n");

    // Success-path costs first.
    let mut rows = Vec::new();
    for (label, v) in [
        ("end-to-end", Variant::EndToEnd),
        ("hop-by-hop", Variant::HopByHop),
        ("checkpoints s=4", Variant::Checkpoints { spacing: 4 }),
    ] {
        let ok = transmit(N, &BTreeSet::new(), v);
        let acks = match v {
            Variant::EndToEnd => 1,
            Variant::HopByHop => N - 1,
            Variant::Checkpoints { spacing } => (N - 2) / spacing + 1,
        };
        rows.push(vec![
            label.to_string(),
            acks.to_string(),
            ok.ack_hops.to_string(),
            ok.time.to_string(),
        ]);
    }
    println!("fault-free delivery:");
    println!(
        "{}",
        render_table(&["variant", "ack msgs", "ack hops", "confirm time"], &rows)
    );

    // Detection behaviour per fault position.
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for f in [1usize, 4, 8, 12, 14] {
        let droppers: BTreeSet<usize> = [f].into_iter().collect();
        let mut cells = vec![f.to_string()];
        let mut csv_row = vec![f.to_string()];
        for v in [
            Variant::EndToEnd,
            Variant::HopByHop,
            Variant::Checkpoints { spacing: 4 },
        ] {
            let out = transmit(N, &droppers, v);
            let (lo, hi) = out.detection.expect("fault detected");
            cells.push(format!("t={} ⟨{lo}..{hi}⟩", out.time));
            csv_row.push(out.time.to_string());
            csv_row.push(out.precision().to_string());
        }
        rows.push(cells);
        csv.push(csv_row);
    }
    println!("fault at position f — detection time and suspected window:");
    println!(
        "{}",
        render_table(&["f", "end-to-end", "hop-by-hop", "checkpoints s=4"], &rows)
    );
    if let Some(p) = write_csv(
        "tab_herzberg",
        &[
            "f", "e2e_t", "e2e_prec", "hbh_t", "hbh_prec", "cp4_t", "cp4_prec",
        ],
        &csv,
    ) {
        println!("(csv: {})", p.display());
    }
    println!(
        "\nPaper shape to compare against: end-to-end pays one ack but waits\n\
         a full round trip and suspects the whole path; hop-by-hop detects\n\
         within two hops at precision 2 but sends an ack per hop;\n\
         checkpoints interpolate (HERZBERG-optimal, §3.3)."
    );
}
