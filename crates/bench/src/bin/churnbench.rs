//! churnbench — reconvergence scenario matrix for the live response loop.
//!
//! Three scenarios over real UDP loopback sockets, each gating a property
//! of the conviction → reroute → reconverge pipeline:
//!
//! 1. **conviction_reroute** (128 routers, Rocketfuel-proportioned): a
//!    mid-path dropper activates in round 2. The segment ends must
//!    convict it (completeness) without accusing a correct-only segment
//!    (accuracy), the signed exclusion must reach every router (each one
//!    opens a new route epoch), and final-round delivery must recover to
//!    at least [`RECOVERY_FLOOR`] of the pre-attack round's.
//! 2. **pure_churn**: an off-path link flaps down and up, then an
//!    off-path router gracefully leaves and rejoins, under live traffic.
//!    The deterministic amnesty window must absorb every transition:
//!    zero suspicions.
//! 3. **crash_restart**: an off-path router silently crashes, a peer
//!    reports it down, and it restarts with a bumped incarnation and an
//!    empty link-state DB. It must serve out probation and be cleared,
//!    with zero suspicions.
//!
//! Writes `BENCH_churn.json` to the current directory and fails
//! (exit ≠ 0) if any gate fails.
//!
//! Run with `cargo run --release -p fatih-bench --bin churnbench`
//! (`-- --smoke` shrinks the churn scenarios and shortens the conviction
//! run; the 128-router conviction gate runs in both modes).

use fatih_core::spec::SpecCheck;
use fatih_net::runtime::{
    ChurnAction, ChurnEvent, DropperSpec, FlowSpec, LiveConfig, LiveDeployment, LiveOutcome,
    LiveSpec,
};
use fatih_net::UdpNet;
use fatih_topology::{builtin, RouterId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::time::Duration;

/// The router count the conviction-reroute gate is enforced at.
const GATE_ROUTERS: usize = 128;

/// Post-reconvergence delivery must reach this fraction of the
/// pre-attack per-round delivery.
const RECOVERY_FLOOR: f64 = 0.99;

/// The round in which the conviction scenario's dropper starts dropping;
/// earlier rounds provide the pre-attack delivery baseline.
const ATTACK_ROUND: u64 = 2;

/// A Sprintlink-proportioned topology with `n` routers (the same shape
/// scalebench sweeps: ~3.1 duplex links per router, degree capped at 45).
fn rocketfuel_like(n: usize) -> Topology {
    let links = (n * 972 / 315).max(n - 1);
    builtin::isp_like("churn", n, links, 45, 0xF00D ^ n as u64)
}

/// Picks `want` flows whose routed paths span at least `min_len` routers,
/// degrading the requirement one router at a time (never below 3) on
/// small dense topologies.
fn pick_flows(topo: &Topology, want: usize, min_len: usize, interval: Duration) -> Vec<FlowSpec> {
    let ids: Vec<RouterId> = topo.routers().collect();
    let routes = topo.link_state_routes();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ ids.len() as u64);
    let mut flows = Vec::with_capacity(want);
    let mut used: BTreeSet<(RouterId, RouterId)> = BTreeSet::new();
    let mut need = min_len;
    while flows.len() < want {
        let mut attempts = 0;
        while flows.len() < want && attempts < 20_000 {
            attempts += 1;
            let s = ids[rng.gen_range(0..ids.len())];
            let d = ids[rng.gen_range(0..ids.len())];
            if s == d || used.contains(&(s, d)) {
                continue;
            }
            let Some(path) = routes.path(s, d) else {
                continue;
            };
            if path.len() < need {
                continue;
            }
            used.insert((s, d));
            flows.push(FlowSpec::new(s, d, 1000, interval));
        }
        if flows.len() < want {
            assert!(
                need > 3,
                "could not find {want} monitored flows even at length >= 3"
            );
            need -= 1;
        }
    }
    flows
}

/// A router that no flow's routed path touches (so churning it never
/// frames honest traffic) with at least two links to flap.
fn off_path_actor(topo: &Topology, flows: &[FlowSpec]) -> RouterId {
    let routes = topo.link_state_routes();
    let mut on_path: BTreeSet<RouterId> = BTreeSet::new();
    for f in flows {
        if let Some(p) = routes.path(f.src, f.dst) {
            on_path.extend(p.routers().iter().copied());
        }
    }
    topo.routers()
        .find(|&r| !on_path.contains(&r) && topo.neighbors(r).len() >= 2)
        .expect("an off-path router with degree >= 2")
}

fn deploy(topo: &Topology, spec: &LiveSpec, cfg: &LiveConfig) -> LiveOutcome {
    let ids: Vec<RouterId> = topo.routers().collect();
    let transports = UdpNet::bind_group(&ids).expect("bind loopback sockets");
    LiveDeployment::run(topo, spec, cfg, transports)
}

/// Protocol timing shared by every scenario: 200ms rounds so the matrix
/// stays seconds-scale.
fn cfg(rounds: u64) -> LiveConfig {
    LiveConfig {
        tau: Duration::from_millis(200),
        exchange_budget: Duration::from_millis(120),
        maturity_lag: Duration::from_millis(50),
        rounds,
        ..LiveConfig::default()
    }
}

struct ConvictionResult {
    complete: bool,
    accurate: bool,
    reconverged: bool,
    baseline_per_round: f64,
    recovered_per_round: f64,
    recovery_ratio: f64,
    epoch_transitions: u64,
    suspicions: usize,
    json: String,
}

/// Scenario 1: conviction-driven rerouting at the gate size.
fn conviction_reroute(rounds: u64) -> ConvictionResult {
    let topo = rocketfuel_like(GATE_ROUTERS);
    let interval = Duration::from_millis(4);
    let flows = pick_flows(&topo, (GATE_ROUTERS / 16).max(4), 5, interval);
    let victim = flows[0];
    let routes = topo.link_state_routes();
    let path = routes.path(victim.src, victim.dst).expect("routed flow");
    let dropper = path.routers()[path.len() / 2];
    let spec = LiveSpec {
        flows,
        droppers: vec![DropperSpec {
            router: dropper,
            rate: 0.3,
            seed: 77,
            active_from: ATTACK_ROUND,
        }],
        ..LiveSpec::default()
    };
    let outcome = deploy(&topo, &spec, &cfg(rounds));

    let faulty: BTreeSet<RouterId> = [dropper].into_iter().collect();
    let check = SpecCheck::evaluate(&outcome.suspicions, &faulty);
    let complete = check.is_complete();
    let accurate = check.is_accurate(cfg(rounds).k + 2);

    let epoch_transitions = outcome.metrics.counter("net.epoch_transitions");
    let ls_updates_applied = outcome.metrics.counter("net.ls_updates_applied");
    // Every router must have applied the exclusion and opened a new epoch.
    let reconverged = epoch_transitions >= GATE_ROUTERS as u64;

    // Per-round delivery: the round before the attack is the baseline;
    // the mean of the last two *complete* rounds is the recovered rate.
    // The final round's snapshot races deployment teardown (its tail is
    // truncated), so it is excluded from the window.
    let m = &outcome.round_metrics;
    let delivered = |i: usize| m[i].counter("net.data_delivered");
    let a = ATTACK_ROUND as usize;
    let n = m.len();
    assert!(n >= a + 5, "too few rounds to measure recovery");
    let baseline_per_round = (delivered(a - 1) - delivered(a - 2)) as f64;
    let recovered_per_round = (delivered(n - 2) - delivered(n - 4)) as f64 / 2.0;
    let recovery_ratio = recovered_per_round / baseline_per_round.max(1.0);

    println!(
        "  conviction_reroute @ {GATE_ROUTERS} routers: complete={complete} \
         accurate={accurate} reconverged={reconverged} \
         ({epoch_transitions} epoch transitions, {ls_updates_applied} LS applies)"
    );
    println!(
        "    delivery: {baseline_per_round:.0}/round pre-attack -> \
         {recovered_per_round:.0}/round recovered (ratio {recovery_ratio:.3})"
    );
    let mut per_round = Vec::with_capacity(n);
    for i in 0..n {
        let prev_d = if i == 0 { 0 } else { delivered(i - 1) };
        let prev_x = if i == 0 {
            0
        } else {
            m[i - 1].counter("net.data_dropped")
        };
        per_round.push((
            delivered(i) - prev_d,
            m[i].counter("net.data_dropped") - prev_x,
        ));
    }
    println!(
        "    isolated={} per-round delivered/dropped: {}",
        outcome.metrics.counter("net.routers_isolated"),
        per_round
            .iter()
            .map(|(d, x)| format!("{d}/{x}"))
            .collect::<Vec<_>>()
            .join(" "),
    );

    let json = format!(
        "{{ \"routers\": {GATE_ROUTERS}, \"rounds\": {rounds}, \
         \"attack_round\": {ATTACK_ROUND}, \"complete\": {complete}, \
         \"accurate\": {accurate}, \"reconverged\": {reconverged}, \
         \"epoch_transitions\": {epoch_transitions}, \
         \"ls_updates_applied\": {ls_updates_applied}, \
         \"baseline_per_round\": {baseline_per_round:.1}, \
         \"recovered_per_round\": {recovered_per_round:.1}, \
         \"recovery_ratio\": {recovery_ratio:.4}, \
         \"per_round_delivered\": [{}], \
         \"suspicions\": {} }}",
        per_round
            .iter()
            .map(|(d, _)| d.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        outcome.suspicions.len()
    );
    ConvictionResult {
        complete,
        accurate,
        reconverged,
        baseline_per_round,
        recovered_per_round,
        recovery_ratio,
        epoch_transitions,
        suspicions: outcome.suspicions.len(),
        json,
    }
}

struct ChurnResult {
    suspicions: usize,
    epoch_transitions: u64,
    probation_admitted: u64,
    probation_cleared: u64,
    data_delivered: u64,
    json: String,
}

fn churn_result(name: &str, routers: usize, outcome: &LiveOutcome) -> ChurnResult {
    let r = ChurnResult {
        suspicions: outcome.suspicions.len(),
        epoch_transitions: outcome.metrics.counter("net.epoch_transitions"),
        probation_admitted: outcome.metrics.counter("net.probation_admitted"),
        probation_cleared: outcome.metrics.counter("net.probation_cleared"),
        data_delivered: outcome.stats.data_delivered,
        json: String::new(),
    };
    println!(
        "  {name} @ {routers} routers: {} suspicions, {} epoch transitions, \
         probation {}→{}, {} delivered",
        r.suspicions,
        r.epoch_transitions,
        r.probation_admitted,
        r.probation_cleared,
        r.data_delivered
    );
    ChurnResult {
        json: format!(
            "{{ \"routers\": {routers}, \"suspicions\": {}, \
             \"epoch_transitions\": {}, \"probation_admitted\": {}, \
             \"probation_cleared\": {}, \"data_delivered\": {} }}",
            r.suspicions,
            r.epoch_transitions,
            r.probation_admitted,
            r.probation_cleared,
            r.data_delivered
        ),
        ..r
    }
}

/// Scenario 2: link flap + graceful leave/rejoin, no adversary.
fn pure_churn(routers: usize) -> ChurnResult {
    let topo = rocketfuel_like(routers);
    let flows = pick_flows(&topo, (routers / 16).max(4), 4, Duration::from_millis(4));
    let actor = off_path_actor(&topo, &flows);
    let peer = topo.neighbors(actor)[0].0;
    let ms = Duration::from_millis;
    let spec = LiveSpec {
        flows,
        churn: vec![
            ChurnEvent {
                at: ms(250),
                actor,
                action: ChurnAction::LinkDown(peer),
            },
            ChurnEvent {
                at: ms(650),
                actor,
                action: ChurnAction::LinkUp(peer),
            },
            ChurnEvent {
                at: ms(900),
                actor,
                action: ChurnAction::Leave,
            },
            ChurnEvent {
                at: ms(1300),
                actor,
                action: ChurnAction::Join,
            },
        ],
        ..LiveSpec::default()
    };
    let outcome = deploy(&topo, &spec, &cfg(8));
    churn_result("pure_churn", routers, &outcome)
}

/// Scenario 3: silent crash, peer report, probationary restart.
fn crash_restart(routers: usize) -> ChurnResult {
    let topo = rocketfuel_like(routers);
    let flows = pick_flows(&topo, (routers / 16).max(4), 4, Duration::from_millis(4));
    let actor = off_path_actor(&topo, &flows);
    let reporter = topo.neighbors(actor)[0].0;
    let ms = Duration::from_millis;
    let spec = LiveSpec {
        flows,
        churn: vec![
            ChurnEvent {
                at: ms(150),
                actor,
                action: ChurnAction::Crash,
            },
            ChurnEvent {
                at: ms(450),
                actor: reporter,
                action: ChurnAction::ReportDown(actor),
            },
            ChurnEvent {
                at: ms(800),
                actor,
                action: ChurnAction::Restart,
            },
        ],
        ..LiveSpec::default()
    };
    let outcome = deploy(&topo, &spec, &cfg(10));
    churn_result("crash_restart", routers, &outcome)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("churnbench ({})", if smoke { "smoke" } else { "full" });

    let conv = conviction_reroute(if smoke { 9 } else { 12 });
    let churn = pure_churn(if smoke { 48 } else { 64 });
    let crash = crash_restart(if smoke { 32 } else { 48 });

    let json = format!(
        "{{\n  \"bench\": \"churnbench\",\n  \"mode\": \"{}\",\n  \
         \"recovery_floor\": {RECOVERY_FLOOR},\n  \
         \"conviction_reroute\": {},\n  \
         \"pure_churn\": {},\n  \
         \"crash_restart\": {}\n}}\n",
        if smoke { "smoke" } else { "full" },
        conv.json,
        churn.json,
        crash.json,
    );
    std::fs::write("BENCH_churn.json", &json).expect("write BENCH_churn.json");
    println!("\nwrote BENCH_churn.json");

    assert!(
        conv.complete && conv.accurate,
        "conviction gate failed: complete={} accurate={} ({} suspicions)",
        conv.complete,
        conv.accurate,
        conv.suspicions
    );
    println!("conviction gate ({GATE_ROUTERS} routers, complete + accurate): ok");
    assert!(
        conv.reconverged,
        "reconvergence gate failed: only {} epoch transitions for {GATE_ROUTERS} routers",
        conv.epoch_transitions
    );
    println!("reconvergence gate (every router applied the exclusion): ok");
    assert!(
        conv.recovery_ratio >= RECOVERY_FLOOR,
        "recovery gate failed: {:.0}/round recovered vs {:.0}/round pre-attack \
         (ratio {:.3} < {RECOVERY_FLOOR})",
        conv.recovered_per_round,
        conv.baseline_per_round,
        conv.recovery_ratio
    );
    println!("recovery gate (delivery >= {RECOVERY_FLOOR}x pre-attack): ok");
    assert_eq!(
        churn.suspicions, 0,
        "pure churn raised suspicions: {}",
        churn.suspicions
    );
    assert!(churn.epoch_transitions > 0, "pure churn never reconverged");
    assert!(churn.data_delivered > 0, "pure churn delivered nothing");
    println!("pure-churn gate (zero suspicions under flaps + leave/join): ok");
    assert_eq!(
        crash.suspicions, 0,
        "crash-restart raised suspicions: {}",
        crash.suspicions
    );
    assert!(
        crash.probation_admitted >= 1 && crash.probation_cleared >= 1,
        "probation never served: admitted={} cleared={}",
        crash.probation_admitted,
        crash.probation_cleared
    );
    assert!(crash.data_delivered > 0, "crash-restart delivered nothing");
    println!("crash-restart gate (probation served + cleared, zero suspicions): ok");
}
