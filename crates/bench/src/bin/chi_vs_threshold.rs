//! §6.4.3 — Protocol χ vs. the static threshold: "it is impossible to
//! find a threshold that can detect subtle attacks" without false
//! positives under congestion.
//!
//! We sweep the attack drop rate over an uncongested and a congested
//! bottleneck, and run both χ and static-threshold detectors at several
//! thresholds over the *same* observations. The table shows each
//! threshold either false-positives on the congested/no-attack row or
//! misses the subtle attacks; χ does neither.
//!
//! Run with `cargo run --release -p fatih-bench --bin chi_vs_threshold`.

use fatih_bench::{
    render_table, run_threshold_baseline, write_csv, ChiAttack, ChiExperiment, Workload,
};
use fatih_sim::SimTime;

const THRESHOLDS: [f64; 4] = [0.01, 0.05, 0.10, 0.20];

fn verdict_str(detected: bool, should_detect: bool) -> String {
    match (detected, should_detect) {
        (true, true) => "detect ✓".into(),
        (false, false) => "quiet  ✓".into(),
        (true, false) => "FALSE+ ✗".into(),
        (false, true) => "miss   ✗".into(),
    }
}

fn main() {
    // (label, congested?, attack fraction)
    let cases: Vec<(String, bool, f64)> = vec![
        ("congested, no attack".into(), true, 0.0),
        ("uncongested, 0.5% attack".into(), false, 0.005),
        ("uncongested, 1% attack".into(), false, 0.01),
        ("uncongested, 5% attack".into(), false, 0.05),
        ("congested, 5% attack".into(), true, 0.05),
        ("congested, 20% attack".into(), true, 0.20),
    ];

    let mut rows = Vec::new();
    for (label, congested, fraction) in &cases {
        let exp = ChiExperiment {
            attack: if *fraction > 0.0 {
                ChiAttack::DropFraction(*fraction)
            } else {
                ChiAttack::None
            },
            workload: Workload::Cbr {
                interval_us: if *congested { 1_100 } else { 4_000 },
            },
            q_limit: 16_000,
            rounds: 6,
            round: SimTime::from_secs(5),
            ..ChiExperiment::default()
        };
        let chi = exp.run();
        let should = *fraction > 0.0 && chi.truth.malicious_drops > 0;
        let mut cells = vec![
            label.clone(),
            chi.truth.malicious_drops.to_string(),
            chi.truth.congestive_drops.to_string(),
            verdict_str(chi.detected(), should),
        ];
        for th in THRESHOLDS {
            let per_round = run_threshold_baseline(&exp, th);
            let detected = per_round.iter().any(|&(_, d)| d);
            cells.push(verdict_str(detected, should));
        }
        rows.push(cells);
    }

    let headers = [
        "scenario",
        "mal(GT)",
        "cong(GT)",
        "Protocol χ",
        "th=1%",
        "th=5%",
        "th=10%",
        "th=20%",
    ];
    println!("== §6.4.3: Protocol χ vs. static thresholds ==\n");
    println!("{}", render_table(&headers, &rows));
    if let Some(p) = write_csv("chi_vs_threshold", &headers, &rows) {
        println!("(csv: {})", p.display());
    }
    println!(
        "\nPaper shape to compare against: every column of the static\n\
         detector contains at least one ✗ — small thresholds false-positive\n\
         under congestion, large ones sleep through subtle attacks — while\n\
         Protocol χ's column is all ✓ (dissertation §6.4.3)."
    );
}
