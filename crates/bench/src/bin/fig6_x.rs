//! Figures 6.5–6.9: Protocol χ on the drop-tail Emulab setup (Fig 6.4's
//! fan-in topology, TCP workload), per-round detection series under:
//!
//! * `none`   — no attack (Fig 6.5: no false detection),
//! * `drop20` — drop 20% of the selected flows (Fig 6.6),
//! * `q90`    — drop the selected flows when the queue is 90% full (Fig 6.7),
//! * `q95`    — same at 95% (Fig 6.8),
//! * `syn`    — target a host opening connections by dropping SYNs (Fig 6.9).
//!
//! Run one scenario with
//! `cargo run --release -p fatih-bench --bin fig6_x -- <scenario>`, or all
//! of them with no argument.

use fatih_bench::{render_table, write_csv, ChiAttack, ChiExperiment, RoundRow, Workload};
use fatih_sim::SimTime;

fn scenario(name: &str) -> Option<(ChiAttack, &'static str)> {
    match name {
        "none" => Some((ChiAttack::None, "Fig 6.5: no attack")),
        "drop20" => Some((
            ChiAttack::DropFraction(0.2),
            "Fig 6.6: drop 20% of selected flows",
        )),
        "q90" => Some((
            ChiAttack::QueueConditional(0.90),
            "Fig 6.7: drop selected flows when queue ≥ 90% full",
        )),
        "q95" => Some((
            ChiAttack::QueueConditional(0.95),
            "Fig 6.8: drop selected flows when queue ≥ 95% full",
        )),
        "syn" => Some((ChiAttack::SynDrop, "Fig 6.9: drop a victim host's SYNs")),
        _ => None,
    }
}

fn run_one(name: &str) {
    let (attack, title) = scenario(name).unwrap_or_else(|| {
        eprintln!("unknown scenario {name}; use none|drop20|q90|q95|syn");
        std::process::exit(2);
    });
    // Queue sized so the 90%/95% triggers sit *below* the overflow
    // boundary (fill·q_limit < q_limit − MTU): the attack then denies
    // service the honest queue would have granted — the dissertation's
    // Emulab queue, measured in packets, had the same property.
    let exp = ChiExperiment {
        attack,
        workload: Workload::Tcp,
        q_limit: 64_000,
        rounds: 12,
        round: SimTime::from_secs(5),
        ..ChiExperiment::default()
    };
    let out = exp.run();
    println!("== {title} ==");
    let rows: Vec<Vec<String>> = out.rows.iter().map(RoundRow::cells).collect();
    println!("{}", render_table(&RoundRow::headers(), &rows));
    if let Some(p) = write_csv(&format!("fig6_x_{name}"), &RoundRow::headers(), &rows) {
        println!("(csv: {})", p.display());
    }
    println!(
        "ground truth: {} malicious, {} congestive drops — detected in {}/{} rounds\n",
        out.truth.malicious_drops,
        out.truth.congestive_drops,
        out.detected_rounds(),
        out.rows.len()
    );
    match attack {
        ChiAttack::None => assert!(!out.detected(), "FALSE POSITIVE in the no-attack scenario"),
        _ => assert!(
            out.truth.malicious_drops == 0 || out.detected(),
            "attack escaped detection"
        ),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        for name in ["none", "drop20", "q90", "q95", "syn"] {
            run_one(name);
        }
    } else {
        for name in &args {
            run_one(name);
        }
    }
    println!(
        "Paper shape to compare against: the no-attack run never detects\n\
         despite real congestive drops, while every attack — including the\n\
         queue-conditional ones crafted to hide inside congestion and the\n\
         handful-of-packets SYN attack — is flagged (dissertation\n\
         Figs 6.5–6.9)."
    );
}
