//! Figure 5.2: for Protocol Π2 under `AdjacentFault(k)`, the maximum,
//! average and median number of path segments `|P_r|` monitored by an
//! individual router, for k = 1..8, on Rocketfuel-shaped Sprintlink and
//! EBONE topologies.
//!
//! Run with `cargo run --release -p fatih-bench --bin fig5_2`.

use fatih_bench::{render_table, write_csv};
use fatih_stats::Summary;
use fatih_topology::{builtin, pi2_segment_counts};

fn main() {
    for (name, topo) in [
        ("sprintlink", builtin::sprintlink_like(1)),
        ("ebone", builtin::ebone_like(1)),
    ] {
        println!(
            "== Figure 5.2 (Protocol Π2) — {name}: {} routers, {} links, mean degree {:.2}, max {} ==",
            topo.router_count(),
            topo.duplex_link_count(),
            topo.mean_degree(),
            topo.max_degree()
        );
        let routes = topo.link_state_routes();
        let mut rows = Vec::new();
        for k in 1..=8usize {
            let counts = pi2_segment_counts(&routes, k);
            let s = Summary::from_iter(counts.iter().map(|&c| c as f64));
            rows.push(vec![
                k.to_string(),
                format!("{:.0}", s.max()),
                format!("{:.1}", s.mean()),
                format!("{:.0}", s.median()),
            ]);
            eprintln!("  k={k} done");
        }
        let headers = ["k", "max |Pr|", "avg |Pr|", "median |Pr|"];
        println!("{}", render_table(&headers, &rows));
        if let Some(p) = write_csv(&format!("fig5_2_{name}"), &headers, &rows) {
            println!("(csv: {})\n", p.display());
        }
    }
    println!(
        "Paper shape to compare against: max ≫ average ≫ median, all growing\n\
         with k; Sprintlink max reaches thousands by k=8 while the median\n\
         stays comparatively small (dissertation Fig 5.2)."
    );
}
