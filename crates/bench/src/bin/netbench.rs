//! netbench — load harness for the fatih-net wire runtime.
//!
//! Measures, on this machine:
//!
//! * **codec throughput** — encode+decode round trips per second for
//!   unauthenticated Data frames (the forwarding fast path, the headline
//!   number) and for HMAC-sealed Summary frames (the control plane);
//! * **transport latency** — request/response RTT p50/p99 over the
//!   in-memory loopback hub and over real UDP sockets on 127.0.0.1.
//!
//! Writes `BENCH_net.json` to the current directory and fails (exit ≠ 0)
//! if Data-frame codec throughput drops below 100k msgs/sec.
//!
//! Run with `cargo run --release -p fatih-bench --bin netbench`. The
//! default is a seconds-scale smoke run; pass `-- --full` for the full
//! measurement CI records (`--smoke` is still accepted as an explicit
//! alias of the default).

use fatih_core::monitor::{Report, ReportEntry};
use fatih_crypto::{Fingerprint, KeyStore};
use fatih_net::codec::{decode_frame, encode_frame, Frame, WireMessage};
use fatih_net::{LoopbackHub, Transport, UdpNet};
use fatih_obs::{Histogram, MetricsRegistry};
use fatih_sim::{FlowId, Packet, PacketId, PacketKind, SimTime};
use fatih_topology::{PathSegment, RouterId};
use std::time::{Duration, Instant};

/// Floor on Data-frame codec throughput (msgs/sec) before the run fails.
const CODEC_FLOOR: f64 = 100_000.0;

/// Floor on sealed Summary-frame throughput (msgs/sec): the control plane
/// must seal+open summaries fast enough that round bookkeeping never
/// competes with forwarding (measured ~144k on the reference machine).
const CONTROL_FLOOR: f64 = 50_000.0;

fn rid(v: u32) -> RouterId {
    RouterId::from(v)
}

fn keys() -> KeyStore {
    let mut ks = KeyStore::with_seed(0xBE7C);
    ks.register(0);
    ks.register(1);
    ks
}

fn data_frame(i: u64) -> Frame {
    let id = PacketId(i + 1);
    Frame {
        src: rid(0),
        dst: rid(1),
        seq: i,
        msg: WireMessage::Data {
            packet: Packet {
                id,
                src: rid(0),
                dst: rid(1),
                flow: FlowId(0),
                kind: PacketKind::Data,
                size: 1000,
                seq: i,
                payload_tag: Packet::expected_tag(id),
                ttl: 64,
                created_at: SimTime::from_ns(i * 1000),
            },
            epoch: 0,
        },
    }
}

fn summary_frame(i: u64) -> Frame {
    Frame {
        src: rid(0),
        dst: rid(1),
        seq: i,
        msg: WireMessage::Summary {
            round: i,
            segment: PathSegment::new(vec![rid(0), rid(1)]),
            report: Report {
                entries: (0..16)
                    .map(|j| ReportEntry {
                        fingerprint: Fingerprint::new(i ^ j),
                        size: 1000,
                        time: SimTime::from_ns(j * 500),
                    })
                    .collect(),
            },
        },
    }
}

/// Encode+decode round trips per second for frames from `make`.
fn codec_rate(make: impl Fn(u64) -> Frame, iters: u64, ks: &KeyStore) -> f64 {
    // Warm up, and keep a checksum live so nothing is optimized away.
    let mut sink = 0u64;
    for i in 0..iters.min(1000) {
        let bytes = encode_frame(&make(i), ks).expect("encodable");
        sink ^= bytes.len() as u64;
    }
    let start = Instant::now();
    for i in 0..iters {
        let frame = make(i);
        let bytes = encode_frame(&frame, ks).expect("encodable");
        let back = decode_frame(&bytes, ks).expect("decodable");
        sink ^= back.seq;
    }
    let secs = start.elapsed().as_secs_f64();
    assert!(sink != u64::MAX, "keep the checksum live");
    iters as f64 / secs
}

/// RTT percentiles over `n` request/response exchanges between two
/// transports, echoing on a second thread. Every sample is also recorded
/// into `hist` so the registry snapshot carries the full distribution;
/// the returned p50/p99 are exact (sorted-sample) values.
fn rtt_percentiles<T: Transport + 'static>(
    mut a: T,
    mut b: T,
    n: usize,
    hist: &Histogram,
) -> (u64, u64) {
    let ks = keys();
    let echo = std::thread::spawn(move || {
        let me = b.local();
        let mut served = 0;
        while served < n {
            match b.recv_timeout(Duration::from_millis(200)) {
                Ok(Some(bytes)) => {
                    let f = decode_frame(&bytes, &keys()).expect("echo decode");
                    let reply = Frame {
                        src: me,
                        dst: f.src,
                        seq: f.seq,
                        msg: f.msg,
                    };
                    let out = encode_frame(&reply, &keys()).expect("echo encode");
                    b.send(f.src, &out).expect("echo send");
                    served += 1;
                }
                Ok(None) => {}
                Err(_) => break,
            }
        }
    });
    let peer = rid(1);
    let mut rtts_ns: Vec<u64> = Vec::with_capacity(n);
    for i in 0..n {
        let bytes = encode_frame(&data_frame(i as u64), &ks).expect("encodable");
        let t0 = Instant::now();
        a.send(peer, &bytes).expect("send");
        match a.recv_timeout(Duration::from_millis(200)) {
            Ok(Some(reply)) => {
                let f = decode_frame(&reply, &ks).expect("reply decode");
                assert_eq!(f.seq, i as u64, "echo out of order");
            }
            Ok(None) => panic!("echo timed out"),
            Err(e) => panic!("transport error: {e:?}"),
        }
        let rtt = t0.elapsed().as_nanos() as u64;
        hist.record(rtt);
        rtts_ns.push(rtt);
    }
    echo.join().expect("echo thread");
    rtts_ns.sort_unstable();
    let pct = |p: f64| rtts_ns[(((rtts_ns.len() - 1) as f64) * p) as usize];
    (pct(0.50), pct(0.99))
}

fn main() {
    let smoke = !std::env::args().any(|a| a == "--full");
    let (codec_iters, rtt_n) = if smoke {
        (50_000, 500)
    } else {
        (500_000, 5_000)
    };
    let ks = keys();
    let reg = MetricsRegistry::new();

    println!("netbench ({})", if smoke { "smoke" } else { "full" });

    let data_rate = codec_rate(data_frame, codec_iters, &ks);
    reg.gauge("netbench.codec_msgs_per_sec").set(data_rate);
    reg.counter("netbench.codec_iters").add(codec_iters);
    println!(
        "  codec Data    : {:>12.0} msgs/sec (encode+decode)",
        data_rate
    );
    let control_rate = codec_rate(summary_frame, codec_iters / 5, &ks);
    reg.gauge("netbench.control_msgs_per_sec").set(control_rate);
    println!(
        "  codec Summary : {:>12.0} msgs/sec (seal+open, 16-entry report)",
        control_rate
    );

    let hub = LoopbackHub::group(&[rid(0), rid(1)]);
    let mut it = hub.into_iter();
    let (a, b) = (it.next().unwrap(), it.next().unwrap());
    let loop_hist = reg.histogram("netbench.loopback_rtt_ns");
    let (loop_p50, loop_p99) = rtt_percentiles(a, b, rtt_n, &loop_hist);
    println!(
        "  loopback RTT  : p50 {:>8} ns   p99 {:>8} ns",
        loop_p50, loop_p99
    );

    let udp = UdpNet::bind_group(&[rid(0), rid(1)]).expect("bind loopback sockets");
    let mut it = udp.into_iter();
    let (a, b) = (it.next().unwrap(), it.next().unwrap());
    let udp_hist = reg.histogram("netbench.udp_rtt_ns");
    let (udp_p50, udp_p99) = rtt_percentiles(a, b, rtt_n, &udp_hist);
    println!(
        "  UDP RTT       : p50 {:>8} ns   p99 {:>8} ns",
        udp_p50, udp_p99
    );
    reg.counter("netbench.rtt_samples").add(2 * rtt_n as u64);

    let snap = reg.snapshot();
    let json = format!(
        "{{\n  \"bench\": \"netbench\",\n  \"mode\": \"{}\",\n  \
         \"codec_msgs_per_sec\": {:.0},\n  \
         \"control_msgs_per_sec\": {:.0},\n  \
         \"loopback_rtt_ns\": {{ \"p50\": {}, \"p99\": {} }},\n  \
         \"udp_rtt_ns\": {{ \"p50\": {}, \"p99\": {} }},\n  \
         \"codec_iters\": {},\n  \"rtt_samples\": {},\n  \
         \"metrics\": {}\n}}\n",
        if smoke { "smoke" } else { "full" },
        data_rate,
        control_rate,
        loop_p50,
        loop_p99,
        udp_p50,
        udp_p99,
        codec_iters,
        rtt_n,
        snap.to_json()
    );
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    println!("\nwrote BENCH_net.json");

    assert!(
        data_rate >= CODEC_FLOOR,
        "Data-frame codec throughput {data_rate:.0} msgs/sec is below the \
         {CODEC_FLOOR:.0} floor"
    );
    println!("codec throughput gate (>= {CODEC_FLOOR:.0} msgs/sec): ok");
    assert!(
        control_rate >= CONTROL_FLOOR,
        "Summary-frame throughput {control_rate:.0} msgs/sec is below the \
         {CONTROL_FLOOR:.0} floor"
    );
    println!("control throughput gate (>= {CONTROL_FLOOR:.0} msgs/sec): ok");
}
