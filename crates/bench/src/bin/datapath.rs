//! datapath — load harness for the traffic-validation fast path.
//!
//! Measures, on this machine:
//!
//! * **fingerprint kernel** — bytes/sec through the 4-lane batched
//!   Mersenne kernel vs the scalar Horner baseline on 1500-byte packets
//!   (the MTU-sized worst case for per-byte cost);
//! * **validation pipeline** — packets/sec through the full data path on
//!   the Abilene backbone: batched monitor ingest → per-end reports →
//!   content summarization → `tv_content` verdicts.
//!
//! Writes `BENCH_datapath.json` to the current directory and fails
//! (exit ≠ 0) if the batched kernel is less than 3× the scalar baseline
//! or the pipeline drops below 1M packets/sec.
//!
//! Run with `cargo run --release -p fatih-bench --bin datapath`
//! (`-- --smoke` for a seconds-scale CI run).

use fatih_core::monitor::{MonitorMetrics, MonitorMode, PathOracle, SegmentMonitorSet};
use fatih_crypto::{KeyStore, UhashKey};
use fatih_obs::MetricsRegistry;
use fatih_sim::{FlowId, Packet, PacketId, PacketKind, SimTime, TapEvent};
use fatih_topology::{builtin, Path, PathSegment};
use fatih_validation::tv_content;
use std::time::Instant;

/// The batched kernel must beat the scalar baseline by this factor on
/// MTU-sized packets.
const KERNEL_FLOOR: f64 = 3.0;

/// Packets/sec floor for the monitor → summary → verdict pipeline.
const PIPELINE_FLOOR: f64 = 1_000_000.0;

/// Scalar-baseline fingerprint throughput in bytes/sec.
fn scalar_rate(key: &UhashKey, msg: &[u8], iters: u64) -> f64 {
    let mut sink = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        sink ^= key.fingerprint_scalar(msg).value();
    }
    let secs = start.elapsed().as_secs_f64();
    assert!(sink != u64::MAX, "keep the checksum live");
    (iters as f64 * msg.len() as f64) / secs
}

/// Batched-kernel fingerprint throughput in bytes/sec.
fn batch_rate(key: &UhashKey, msg: &[u8], iters: u64) -> f64 {
    const GROUP: u64 = 64;
    let msgs: Vec<&[u8]> = (0..GROUP).map(|_| msg).collect();
    let mut out = Vec::new();
    let mut sink = 0u64;
    let start = Instant::now();
    for _ in 0..iters / GROUP {
        key.fingerprint_batch_into(&msgs, &mut out);
        sink ^= out[0].value();
    }
    let secs = start.elapsed().as_secs_f64();
    assert!(sink != u64::MAX, "keep the checksum live");
    ((iters / GROUP * GROUP) as f64 * msg.len() as f64) / secs
}

/// The Abilene workload: end-to-end monitored paths and a pre-generated
/// tap-event tape (source enqueue + sink arrival per packet), so the timed
/// region measures the validation pipeline and not traffic generation.
struct Workload {
    segments: Vec<PathSegment>,
    oracle: PathOracle,
    events: Vec<TapEvent>,
    packets: usize,
}

fn build_workload(packets: usize) -> Workload {
    let topo = builtin::abilene();
    let routes = topo.link_state_routes();
    // Monitor routed paths end-to-end (Πk+2 ends-only style); spread the
    // packet budget round-robin across them. Only *maximal* paths are
    // kept — a shortest path's subpath is itself a routed path, and a
    // nested segment would be fed by the tape's source events but not its
    // sink events (the tape carries end events only, not per-hop ones).
    let all: Vec<Path> = routes
        .all_paths()
        .filter(|p| p.routers().len() >= 3)
        .collect();
    let paths: Vec<Path> = all
        .iter()
        .filter(|p| {
            !all.iter()
                .any(|q| q.routers().len() > p.routers().len() && q.contains_segment(p.routers()))
        })
        .cloned()
        .collect();
    let segments: Vec<PathSegment> = paths
        .iter()
        .map(|p| PathSegment::new(p.routers().to_vec()))
        .collect();
    let oracle = PathOracle::from_routes(&routes);
    let mut events = Vec::with_capacity(packets * 2);
    for i in 0..packets {
        let path = &paths[i % paths.len()];
        let routers = path.routers();
        let id = PacketId(i as u64 + 1);
        let packet = Packet {
            id,
            src: routers[0],
            dst: routers[routers.len() - 1],
            flow: FlowId((i % paths.len()) as u32),
            kind: PacketKind::Data,
            size: 1500,
            seq: i as u64,
            payload_tag: Packet::expected_tag(id),
            ttl: Packet::DEFAULT_TTL,
            created_at: SimTime::from_ns(i as u64 * 100),
        };
        events.push(TapEvent::Enqueued {
            router: routers[0],
            next_hop: routers[1],
            packet,
            time: SimTime::from_ns(i as u64 * 100),
            queue_len_after: 0,
        });
        events.push(TapEvent::Arrived {
            router: routers[routers.len() - 1],
            from: Some(routers[routers.len() - 2]),
            packet,
            time: SimTime::from_ns(i as u64 * 100 + 50),
        });
    }
    Workload {
        segments,
        oracle,
        events,
        packets,
    }
}

/// Packets/sec through ingest → reports → summaries → verdicts. The
/// monitor counts ingest work (records, memo hits/misses, batches) into
/// `reg` under `monitor.*` names.
fn pipeline_rate(w: &Workload, ks: &KeyStore, reg: &MetricsRegistry) -> f64 {
    let mut mon = SegmentMonitorSet::new(
        w.segments.clone(),
        w.oracle.clone(),
        ks,
        MonitorMode::EndsOnly,
        None,
    );
    mon.attach_metrics(MonitorMetrics::registered(reg));
    let start = Instant::now();
    for chunk in w.events.chunks(512) {
        mon.observe_batch(chunk);
    }
    let mut lost = 0usize;
    let mut fabricated = 0usize;
    for (i, seg) in w.segments.iter().enumerate() {
        let routers = seg.routers();
        let up = mon.report(routers[0], i).to_content();
        let down = mon.report(routers[routers.len() - 1], i).to_content();
        let verdict = tv_content(&up, &down);
        lost += verdict.lost.len();
        fabricated += verdict.fabricated.len();
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(
        (lost, fabricated),
        (0, 0),
        "clean workload must validate clean"
    );
    w.packets as f64 / secs
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (fp_iters, packets) = if smoke {
        (200_000, 200_000)
    } else {
        (2_000_000, 1_000_000)
    };

    println!("datapath ({})", if smoke { "smoke" } else { "full" });
    let reg = MetricsRegistry::new();

    let key = UhashKey::from_seed(0xDA7A);
    let msg = vec![0xA5u8; 1500];
    // Warm up both paths before timing.
    let _ = scalar_rate(&key, &msg, 1_000);
    let _ = batch_rate(&key, &msg, 1_000);
    let scalar_bps = scalar_rate(&key, &msg, fp_iters);
    let batch_bps = batch_rate(&key, &msg, fp_iters);
    let speedup = batch_bps / scalar_bps;
    println!(
        "  fingerprint scalar : {:>8.0} MB/s  (1500 B packets)",
        scalar_bps / 1e6
    );
    println!(
        "  fingerprint batch  : {:>8.0} MB/s  ({speedup:.2}x scalar)",
        batch_bps / 1e6
    );

    let mut ks = KeyStore::with_seed(0xDA7A);
    let topo = builtin::abilene();
    for r in topo.routers() {
        ks.register(u32::from(r));
    }
    let w = build_workload(packets);
    println!(
        "  workload           : {} packets over {} Abilene paths",
        w.packets,
        w.segments.len()
    );
    let pipeline_pps = pipeline_rate(&w, &ks, &reg);
    println!(
        "  pipeline           : {:>8.2}M pkts/sec (ingest + summarize + tv_content)",
        pipeline_pps / 1e6
    );

    reg.gauge("datapath.fingerprint_scalar_bytes_per_sec")
        .set(scalar_bps);
    reg.gauge("datapath.fingerprint_batch_bytes_per_sec")
        .set(batch_bps);
    reg.gauge("datapath.fingerprint_speedup").set(speedup);
    reg.gauge("datapath.pipeline_pkts_per_sec")
        .set(pipeline_pps);
    let snap = reg.snapshot();
    let json = format!(
        "{{\n  \"bench\": \"datapath\",\n  \"mode\": \"{}\",\n  \
         \"fingerprint_scalar_bytes_per_sec\": {:.0},\n  \
         \"fingerprint_batch_bytes_per_sec\": {:.0},\n  \
         \"fingerprint_speedup\": {:.3},\n  \
         \"pipeline_pkts_per_sec\": {:.0},\n  \
         \"packets\": {},\n  \"paths\": {},\n  \
         \"metrics\": {}\n}}\n",
        if smoke { "smoke" } else { "full" },
        scalar_bps,
        batch_bps,
        speedup,
        pipeline_pps,
        w.packets,
        w.segments.len(),
        snap.to_json()
    );
    std::fs::write("BENCH_datapath.json", &json).expect("write BENCH_datapath.json");
    println!("\nwrote BENCH_datapath.json");

    assert!(
        speedup >= KERNEL_FLOOR,
        "batched kernel is only {speedup:.2}x the scalar baseline \
         (floor {KERNEL_FLOOR}x)"
    );
    println!("kernel speedup gate (>= {KERNEL_FLOOR}x scalar): ok");
    assert!(
        pipeline_pps >= PIPELINE_FLOOR,
        "pipeline throughput {pipeline_pps:.0} pkts/sec is below the \
         {PIPELINE_FLOOR:.0} floor"
    );
    println!("pipeline throughput gate (>= {PIPELINE_FLOOR:.0} pkts/sec): ok");
}
