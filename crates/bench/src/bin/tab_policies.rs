//! §2.2.1 / §2.4.1 coverage matrix: which conservation-of-traffic policy
//! detects which attack. Flow conservation sees only volume (blind to
//! modification and reordering), content adds fingerprints, order adds
//! sequencing — reproduced live with Protocol Π2 over the simulator.
//!
//! Run with `cargo run --release -p fatih-bench --bin tab_policies`.

use fatih_bench::{render_table, write_csv};
use fatih_core::pi2::{Pi2Config, Pi2Detector};
use fatih_core::spec::SpecCheck;
use fatih_core::{Policy, Thresholds};
use fatih_crypto::KeyStore;
use fatih_sim::{Attack, AttackKind, Network, SimTime, VictimFilter};
use fatih_topology::{builtin, RouterId};
use std::collections::BTreeSet;

#[derive(Clone, Copy)]
enum Scenario {
    Drop,
    Modify,
    Reorder,
}

fn run(scenario: Scenario, policy: Policy) -> bool {
    let topo = builtin::line(5);
    let ids: Vec<RouterId> = topo.routers().collect();
    let mut ks = KeyStore::with_seed(14);
    for r in topo.routers() {
        ks.register(r.into());
    }
    let mut net = Network::new(topo, 14);
    // Generous loss allowance so only the *targeted* signal can fire, and
    // a zero reorder allowance for the order policy.
    let thresholds = match scenario {
        // For the drop scenario the loss signal is the point.
        Scenario::Drop => Thresholds {
            loss: 5,
            reorder: 5,
        },
        // For modify/reorder, mask the loss channel entirely so the table
        // shows which policy sees the *content*/*order* signal.
        Scenario::Modify | Scenario::Reorder => Thresholds {
            loss: usize::MAX,
            reorder: 0,
        },
    };
    let mut det = Pi2Detector::new(
        net.routes(),
        ks,
        Pi2Config {
            policy,
            thresholds,
            use_consensus: false,
            ..Pi2Config::default()
        },
    );
    let flow = net.add_cbr_flow(
        ids[0],
        ids[4],
        1000,
        SimTime::from_ms(2),
        SimTime::ZERO,
        None,
    );
    let kind = match scenario {
        Scenario::Drop => AttackKind::Drop { fraction: 0.3 },
        Scenario::Modify => AttackKind::Modify { fraction: 0.3 },
        Scenario::Reorder => AttackKind::Delay {
            extra: SimTime::from_ms(7),
            fraction: 0.3,
        },
    };
    net.set_attacks(
        ids[2],
        vec![Attack {
            victims: VictimFilter::flows([flow]),
            kind,
        }],
    );
    let end = SimTime::from_secs(5);
    net.run_until(end, |ev| det.observe(ev));
    let suspicions = det.end_round(end);
    let faulty: BTreeSet<RouterId> = [ids[2]].into_iter().collect();
    SpecCheck::evaluate(&suspicions, &faulty).is_complete()
}

fn main() {
    println!("== §2.4.1: conservation policies vs attacks (Protocol Π2, 30% attack) ==\n");
    let mut rows = Vec::new();
    for (label, scenario, expect) in [
        ("packet loss", Scenario::Drop, [true, true, true]),
        ("modification", Scenario::Modify, [false, true, true]),
        (
            "reordering (via delay)",
            Scenario::Reorder,
            [false, false, true],
        ),
    ] {
        let mut cells = vec![label.to_string()];
        for (i, policy) in [Policy::Flow, Policy::Content, Policy::Order]
            .into_iter()
            .enumerate()
        {
            let caught = run(scenario, policy);
            cells.push(if caught {
                "detected".into()
            } else {
                "blind".into()
            });
            assert_eq!(
                caught, expect[i],
                "{label} under {policy:?}: expected {}",
                expect[i]
            );
        }
        rows.push(cells);
    }
    let headers = ["attack", "flow", "content", "order"];
    println!("{}", render_table(&headers, &rows));
    if let Some(p) = write_csv("tab_policies", &headers, &rows) {
        println!("(csv: {})", p.display());
    }
    println!(
        "\nPaper shape to compare against: §2.4.1's hierarchy — flow\n\
         conservation catches loss only (modification balances the books),\n\
         content adds modification/fabrication, and only the order policy\n\
         sees reordering."
    );
}
