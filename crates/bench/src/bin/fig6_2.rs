//! Figure 6.2: the confidence value of the single-packet-loss test —
//! `c_single = P(X ≤ q_limit − q_pred − ps)` for the learned error model
//! `X ~ N(µ, σ)` — as a function of the predicted queue length at the
//! moment of the drop.
//!
//! Run with `cargo run --release -p fatih-bench --bin fig6_2`.

use fatih_bench::{render_table, write_csv};
use fatih_stats::normal;

fn main() {
    let q_limit = 64_000.0f64;
    let ps = 1_000.0f64;
    let mu = 0.0f64;
    let sigmas = [300.0f64, 1_500.0, 6_000.0];

    println!("== Figure 6.2: single-loss confidence vs predicted queue length ==");
    println!("q_limit = {q_limit} B, packet = {ps} B, µ = {mu}\n");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let steps = 32;
    for i in 0..=steps {
        let q_pred = q_limit * i as f64 / steps as f64;
        let mut cells = vec![format!("{q_pred:.0}")];
        let mut csv_row = vec![format!("{q_pred:.0}")];
        for &sigma in &sigmas {
            let c = normal::cdf((q_limit - q_pred - ps - mu) / sigma);
            cells.push(format!("{c:.4}"));
            csv_row.push(format!("{c:.6}"));
        }
        rows.push(cells);
        csv.push(csv_row);
    }
    let headers = ["q_pred (B)", "c (σ=300)", "c (σ=1500)", "c (σ=6000)"];
    println!("{}", render_table(&headers, &rows));
    if let Some(p) = write_csv("fig6_2", &headers, &csv) {
        println!("(csv: {})", p.display());
    }
    println!(
        "\nPaper shape to compare against: confidence ≈ 1 while the queue\n\
         has room, collapsing to ≈ 0 as q_pred + ps approaches q_limit,\n\
         with the transition width set by σ (dissertation Fig 6.2)."
    );
}
