//! §3.1 — the WATCHERS consorting-routers experiment (Figure 3.3): on the
//! line a–b–c–d–e, routers c and d collude: c drops transit traffic
//! destined for e and, with d corroborating, launders the missing bytes
//! as traffic destined to d. Aggregate conservation-of-flow counters pass
//! the laundering; per-destination counters (the fixed protocol) catch it.
//!
//! Run with `cargo run --release -p fatih-bench --bin watchers_flaw`.

use fatih_bench::render_table;
use fatih_core::spec::SpecCheck;
use fatih_core::watchers::{
    watchers_counter_count, CounterFault, WatchersConfig, WatchersDetector, WatchersMode,
};
use fatih_crypto::KeyStore;
use fatih_sim::{Attack, Network, SimTime};
use fatih_topology::{builtin, RouterId};
use std::collections::BTreeSet;

fn run(mode: WatchersMode) -> (usize, usize, bool) {
    let topo = builtin::line(5);
    let ids: Vec<RouterId> = (0..5)
        .map(|i| topo.router_by_name(&format!("n{i}")).unwrap())
        .collect();
    let mut ks = KeyStore::with_seed(1);
    for r in topo.routers() {
        ks.register(r.into());
    }
    let mut net = Network::new(topo, 1);
    let flow = net.add_cbr_flow(
        ids[0],
        ids[4],
        1000,
        SimTime::from_ms(2),
        SimTime::ZERO,
        Some(SimTime::from_secs(10)),
    );
    net.set_attacks(ids[2], vec![Attack::drop_flows([flow], 0.3)]);
    let mut det = WatchersDetector::new(
        net.topology(),
        WatchersConfig {
            mode,
            threshold_bytes: 10_000,
        },
    );
    det.set_counter_fault(ids[2], CounterFault::AbsorbDrops { partner: ids[3] });
    let end = SimTime::from_secs(12);
    net.run_until(end, |ev| det.observe(ev));
    let suspicions = det.end_round(end);
    let faulty: BTreeSet<RouterId> = [ids[2], ids[3]].into_iter().collect();
    let check = SpecCheck::evaluate(&suspicions, &faulty);
    (
        suspicions.len(),
        check.detected_faulty.len(),
        check.false_positives.is_empty(),
    )
}

fn main() {
    println!("== §3.1: WATCHERS and the consorting-routers flaw (Figure 3.3) ==\n");
    println!("scenario: c (n2) drops 30% of a→e transit; c and d launder the");
    println!("missing bytes as traffic destined to d, corroborating each other.\n");

    let mut rows = Vec::new();
    for (label, mode) in [
        ("aggregate counters (original)", WatchersMode::Aggregate),
        (
            "per-destination counters (fixed)",
            WatchersMode::PerDestination,
        ),
    ] {
        let (suspicions, caught, accurate) = run(mode);
        rows.push(vec![
            label.to_string(),
            suspicions.to_string(),
            caught.to_string(),
            if caught > 0 { "detected" } else { "LAUNDERED" }.into(),
            if accurate { "yes" } else { "no" }.into(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "counter mode",
                "suspicions",
                "faulty caught",
                "outcome",
                "accurate"
            ],
            &rows
        )
    );

    // The price of the fix (§3.1: O(R·N) counters).
    let sl = builtin::sprintlink_like(1);
    let counts: Vec<usize> = sl
        .routers()
        .map(|r| watchers_counter_count(&sl, r))
        .collect();
    let avg = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
    let max = counts.iter().max().copied().unwrap_or(0);
    println!(
        "\ncost of the per-destination fix on the Sprintlink shape:\n\
         avg {avg:.0} counters/router, max {max} (paper: ≈13,605 avg / 99,225 max)."
    );
    println!(
        "\nPaper shape to compare against: the aggregate protocol reports\n\
         nothing (the launder balances its books), the per-destination\n\
         protocol catches the consorting pair — at an O(R·N) state cost\n\
         that motivates the path-segment protocols of Chapter 5."
    );
}
