//! scalebench — Rocketfuel-scale sweep of the sharded live runtime.
//!
//! Deploys the Πk+2 live runtime over real UDP loopback sockets on
//! Rocketfuel-proportioned ISP topologies (the Sprintlink AS1239 shape:
//! ~3.1 duplex links per router, degree capped at 45) and sweeps router
//! count, measuring for each size:
//!
//! * **pkts/sec validated** — data packets delivered through monitored
//!   paths per wall-clock second of the deployment;
//! * **control bytes per data packet** — the control-plane cost of the
//!   summary exchange, in `Full` transfer mode versus `Reconcile`
//!   (digest + certified difference decode) mode.
//!
//! Writes `BENCH_scale.json` to the current directory and fails
//! (exit ≠ 0) unless:
//!
//! 1. the largest deployment completes every detection round with **zero
//!    false accusations** in both modes, and with a mid-path dropper
//!    injected, catches it (completeness) without accusing any
//!    correct-only segment (accuracy);
//! 2. at the largest size, reconciled summary exchange costs **≤ 0.5×**
//!    the control bytes of full exchange (small-difference regime).
//!
//! Run with `cargo run --release -p fatih-bench --bin scalebench`
//! (`-- --smoke` for the reduced CI sweep; the 128-router gate runs in
//! both modes).

use fatih_core::spec::SpecCheck;
use fatih_net::runtime::{
    DropperSpec, FlowSpec, LiveConfig, LiveDeployment, LiveOutcome, LiveSpec, SummaryMode,
};
use fatih_net::UdpNet;
use fatih_topology::{builtin, RouterId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Sketch capacity of reconciliation mode: spans clean-run differences
/// (boundary crossers + in-flight packets) with generous headroom.
const SKETCH_CAPACITY: usize = 32;

/// Reconciled control bytes must come in at or below this fraction of
/// full-transfer control bytes at the largest sweep size.
const RATIO_LIMIT: f64 = 0.5;

/// The router count the headline gates are enforced at.
const GATE_ROUTERS: usize = 128;

/// A Sprintlink-proportioned topology with `n` routers.
fn rocketfuel_like(n: usize) -> Topology {
    // 972 links / 315 routers ≈ 3.09 links per router (AS1239 shape).
    let links = (n * 972 / 315).max(n - 1);
    builtin::isp_like("scale", n, links, 45, 0xF00D ^ n as u64)
}

/// Picks `want` flows whose routed paths span at least `min_len` routers,
/// so every flow produces multi-segment Πk+2 monitoring. Small dense
/// topologies may not have paths that long; the requirement degrades one
/// router at a time (never below 3 — one full k+2 segment) until the
/// quota fills.
fn pick_flows(topo: &Topology, want: usize, min_len: usize, interval: Duration) -> Vec<FlowSpec> {
    let ids: Vec<RouterId> = topo.routers().collect();
    let routes = topo.link_state_routes();
    let mut rng = StdRng::seed_from_u64(0x5CA1E ^ ids.len() as u64);
    let mut flows = Vec::with_capacity(want);
    let mut used: BTreeSet<(RouterId, RouterId)> = BTreeSet::new();
    let mut need = min_len;
    while flows.len() < want {
        let mut attempts = 0;
        while flows.len() < want && attempts < 20_000 {
            attempts += 1;
            let s = ids[rng.gen_range(0..ids.len())];
            let d = ids[rng.gen_range(0..ids.len())];
            if s == d || used.contains(&(s, d)) {
                continue;
            }
            let Some(path) = routes.path(s, d) else {
                continue;
            };
            if path.len() < need {
                continue;
            }
            used.insert((s, d));
            flows.push(FlowSpec::new(s, d, 1000, interval));
        }
        if flows.len() < want {
            assert!(
                need > 3,
                "could not find {want} monitored flows even at length >= 3"
            );
            need -= 1;
        }
    }
    flows
}

/// One live deployment; returns the outcome and the wall time it took.
fn deploy(topo: &Topology, spec: &LiveSpec, cfg: &LiveConfig) -> (LiveOutcome, f64) {
    let ids: Vec<RouterId> = topo.routers().collect();
    let transports = UdpNet::bind_group(&ids).expect("bind loopback sockets");
    let t0 = Instant::now();
    let outcome = LiveDeployment::run(topo, spec, cfg, transports);
    (outcome, t0.elapsed().as_secs_f64())
}

struct ModeResult {
    pkts_per_sec: f64,
    control_bytes: u64,
    control_bytes_per_pkt: f64,
    data_delivered: u64,
    digests_resolved: u64,
    digest_fallbacks: u64,
    suspicions: usize,
}

fn run_mode(topo: &Topology, spec: &LiveSpec, cfg: &LiveConfig) -> ModeResult {
    let (outcome, secs) = deploy(topo, spec, cfg);
    let s = outcome.stats;
    ModeResult {
        pkts_per_sec: s.data_delivered as f64 / secs,
        control_bytes: s.control_bytes_sent,
        control_bytes_per_pkt: s.control_bytes_sent as f64 / s.data_delivered.max(1) as f64,
        data_delivered: s.data_delivered,
        digests_resolved: s.digests_resolved,
        digest_fallbacks: s.digest_fallbacks,
        suspicions: outcome.suspicions.len(),
    }
}

fn mode_json(m: &ModeResult) -> String {
    format!(
        "{{ \"pkts_per_sec\": {:.0}, \"control_bytes\": {}, \
         \"control_bytes_per_pkt\": {:.1}, \"data_delivered\": {}, \
         \"digests_resolved\": {}, \"digest_fallbacks\": {}, \
         \"suspicions\": {} }}",
        m.pkts_per_sec,
        m.control_bytes,
        m.control_bytes_per_pkt,
        m.data_delivered,
        m.digests_resolved,
        m.digest_fallbacks,
        m.suspicions
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[48, GATE_ROUTERS]
    } else {
        &[32, 64, GATE_ROUTERS]
    };
    let rounds = if smoke { 2 } else { 3 };
    let interval = Duration::from_millis(4);

    println!("scalebench ({})", if smoke { "smoke" } else { "full" });

    // Detection-only: the conviction→reroute response loop would reroute
    // around the injected dropper mid-measurement and skew the
    // control-byte comparison; churnbench gates the response path.
    let cfg_full = LiveConfig {
        rounds,
        summary: SummaryMode::Full,
        response: false,
        ..LiveConfig::default()
    };
    let cfg_rec = LiveConfig {
        summary: SummaryMode::Reconcile {
            capacity: SKETCH_CAPACITY,
        },
        ..cfg_full
    };

    let mut sweep_rows = Vec::new();
    let mut gate_ratio = f64::NAN;
    let mut gate_clean = true;
    for &n in sizes {
        let topo = rocketfuel_like(n);
        let flows = pick_flows(&topo, (n / 16).max(4), 5, interval);
        let spec = LiveSpec {
            flows,
            ..LiveSpec::default()
        };

        let full = run_mode(&topo, &spec, &cfg_full);
        let rec = run_mode(&topo, &spec, &cfg_rec);
        let ratio = rec.control_bytes as f64 / full.control_bytes.max(1) as f64;
        println!(
            "  n={n:>4}: full {:>7.0} pkts/s, {:>6.1} ctl B/pkt | reconciled \
             {:>6.1} ctl B/pkt (ratio {ratio:.3}, {} resolved, {} fallbacks)",
            full.pkts_per_sec,
            full.control_bytes_per_pkt,
            rec.control_bytes_per_pkt,
            rec.digests_resolved,
            rec.digest_fallbacks,
        );
        if full.suspicions + rec.suspicions > 0 {
            gate_clean = false;
            println!(
                "  n={n:>4}: FALSE ACCUSATIONS (full {}, reconciled {})",
                full.suspicions, rec.suspicions
            );
        }
        if n == GATE_ROUTERS {
            gate_ratio = ratio;
        }
        sweep_rows.push(format!(
            "    {{ \"routers\": {n}, \"links\": {}, \"flows\": {}, \
             \"interval_ms\": {}, \"full\": {}, \"reconciled\": {}, \
             \"ratio\": {ratio:.4} }}",
            topo.link_count(),
            spec.flows.len(),
            interval.as_millis(),
            mode_json(&full),
            mode_json(&rec),
        ));
    }

    // Adversarial run at the gate size: a mid-path dropper must be caught
    // (completeness) without accusing a correct-only segment (accuracy),
    // with the cumulative loss overflowing the sketch into full-pull
    // fallbacks rather than a wrong verdict.
    let topo = rocketfuel_like(GATE_ROUTERS);
    let flows = pick_flows(&topo, (GATE_ROUTERS / 16).max(4), 5, interval);
    let victim = flows[0];
    let routes = topo.link_state_routes();
    let path = routes.path(victim.src, victim.dst).expect("routed flow");
    let dropper = path.routers()[path.len() / 2];
    let spec = LiveSpec {
        flows,
        droppers: vec![DropperSpec {
            router: dropper,
            rate: 0.3,
            seed: 77,
            active_from: 0,
        }],
        ..LiveSpec::default()
    };
    let (outcome, _) = deploy(&topo, &spec, &cfg_rec);
    let faulty: BTreeSet<RouterId> = [dropper].into_iter().collect();
    let check = SpecCheck::evaluate(&outcome.suspicions, &faulty);
    let complete = check.is_complete();
    let accurate = check.is_accurate(cfg_rec.k + 2);
    println!(
        "  dropper @ {GATE_ROUTERS} routers: complete={complete} accurate={accurate} \
         ({} resolved, {} fallbacks; {} trace events, {} overwritten)",
        outcome.stats.digests_resolved,
        outcome.stats.digest_fallbacks,
        outcome.trace.len(),
        outcome.trace.dropped(),
    );

    let json = format!(
        "{{\n  \"bench\": \"scalebench\",\n  \"mode\": \"{}\",\n  \
         \"sketch_capacity\": {SKETCH_CAPACITY},\n  \"rounds\": {rounds},\n  \
         \"sweep\": [\n{}\n  ],\n  \
         \"dropper_check\": {{ \"routers\": {GATE_ROUTERS}, \"complete\": {complete}, \
         \"accurate\": {accurate}, \"digest_fallbacks\": {} }},\n  \
         \"trace\": {{ \"events\": {}, \"overwritten\": {} }},\n  \
         \"metrics\": {},\n  \
         \"gates\": {{ \"gate_routers\": {GATE_ROUTERS}, \
         \"zero_false_accusations\": {gate_clean}, \
         \"reconcile_ratio\": {gate_ratio:.4}, \"ratio_limit\": {RATIO_LIMIT} }}\n}}\n",
        if smoke { "smoke" } else { "full" },
        sweep_rows.join(",\n"),
        outcome.stats.digest_fallbacks,
        outcome.trace.len(),
        outcome.trace.dropped(),
        outcome.metrics.to_json(),
    );
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("\nwrote BENCH_scale.json");

    assert!(
        gate_clean,
        "a clean run at some sweep size raised false accusations"
    );
    println!("clean-run gate ({GATE_ROUTERS} routers, zero false accusations): ok");
    assert!(
        complete && accurate,
        "dropper detection at {GATE_ROUTERS} routers failed: complete={complete} \
         accurate={accurate}"
    );
    println!("dropper gate ({GATE_ROUTERS} routers, complete + accurate): ok");
    assert!(
        gate_ratio <= RATIO_LIMIT,
        "reconciled control bytes ratio {gate_ratio:.3} exceeds the {RATIO_LIMIT} limit"
    );
    println!("control-byte gate (reconciled <= {RATIO_LIMIT}x full): ok");
}
