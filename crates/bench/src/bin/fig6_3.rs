//! Figure 6.3: the NS-simulation study of Protocol χ — the distribution
//! of the queue-prediction error `q_error = q_act − q_pred`.
//!
//! In our deterministic substrate the replay is *exact*, so with perfect
//! clocks the error is identically zero. The dissertation's error came
//! from real-world noise (NTP skew, scheduling); we reintroduce exactly
//! that by giving each monitoring neighbour a clock skew of a few hundred
//! microseconds, then show that the resulting error is small and
//! approximately normal — the property §6.2.1 relies on when it models
//! `X = q_act − q_pred ~ N(µ, σ)`.
//!
//! Run with `cargo run --release -p fatih-bench --bin fig6_3`.

use fatih_bench::{render_table, write_csv};
use fatih_core::chi::{ChiConfig, QueueModel, QueueValidator};
use fatih_crypto::KeyStore;
use fatih_sim::{Network, SimTime, TapEvent};
use fatih_stats::Histogram;
use fatih_topology::{builtin, LinkParams};

fn main() {
    let bottleneck = LinkParams {
        bandwidth_bps: 8_000_000,
        queue_limit_bytes: 32_000,
        ..LinkParams::default()
    };
    let topo = builtin::fan_in(3, bottleneck);
    let mut ks = KeyStore::with_seed(2);
    for r in topo.routers() {
        ks.register(r.into());
    }
    let r = topo.router_by_name("r").unwrap();
    let rd = topo.router_by_name("rd").unwrap();
    // A deployment with known clock noise calibrates the detector during
    // the learning period (§6.2.1): σ absorbs the skew-induced prediction
    // error, and the exact-replay mismatch test — which assumes calibrated
    // clocks — is disabled.
    let cfg = ChiConfig {
        sigma: 2_000.0,
        mismatch_floor: usize::MAX,
        ..ChiConfig::default()
    };
    let mut validator = QueueValidator::new(&topo, &ks, r, rd, QueueModel::DropTail, cfg);
    let mut net = Network::new(topo, 2);

    // NTP-grade skews: a few hundred microseconds per monitor (§5.3.1
    // says "clocks synchronized within a few milliseconds are sufficient").
    let skews: Vec<i64> = vec![350_000, -250_000, 150_000]; // ns, per source
    for (i, &sk) in skews.iter().enumerate() {
        let s = net.topology().router_by_name(&format!("s{i}")).unwrap();
        net.set_clock_skew(s, sk);
    }

    for i in 0..3 {
        let s = net.topology().router_by_name(&format!("s{i}")).unwrap();
        net.add_cbr_flow(
            s,
            rd,
            1000,
            SimTime::from_us(1_100 + 13 * i as u64),
            SimTime::from_us(137 * i as u64),
            Some(SimTime::from_secs(30)),
        );
    }

    // Run, feeding the validator *skewed* timestamps (what each monitor's
    // own clock would have recorded) while sampling the true queue.
    let routes = net.routes().clone();
    let mut actual: Vec<(SimTime, f64)> = Vec::new();
    let skew_of = |router: fatih_topology::RouterId| -> i64 {
        let idx: u32 = router.into();
        *skews.get(idx as usize).unwrap_or(&0)
    };
    let end = SimTime::from_secs(32);
    net.run_until(end, |ev| {
        let skewed = match *ev {
            TapEvent::Transmitted {
                router,
                next_hop,
                packet,
                time,
            } => TapEvent::Transmitted {
                router,
                next_hop,
                packet,
                time: time.with_skew(skew_of(router)),
            },
            other => other,
        };
        validator.observe(&skewed, |p| {
            routes
                .path(p.src, p.dst)
                .and_then(|path| path.next_after(r))
        });
        if let TapEvent::Enqueued {
            router,
            next_hop,
            time,
            queue_len_after,
            ..
        } = ev
        {
            if *router == r && *next_hop == rd {
                actual.push((*time, *queue_len_after as f64));
            }
        }
    });
    let verdict = validator.end_round(end);

    // Pair predicted and actual occupancy by walking both series.
    let trace = validator.prediction_trace();
    let mut hist = Histogram::new(-4_000.0, 4_000.0, 32);
    let mut ai = 0usize;
    for &(tp, qp) in trace {
        // The actual sample at the same true enqueue instant (predictions
        // are timestamped with the skewed clock; match by order).
        if ai < actual.len() {
            let (_, qa) = actual[ai];
            hist.push(qa - qp);
            ai += 1;
        }
        let _ = tp;
    }

    println!("== Figure 6.3: distribution of q_error = q_act − q_pred ==");
    println!(
        "samples: {}   mean: {:.1} B   std dev: {:.1} B   skewness: {:.3}   excess kurtosis: {:.3}",
        hist.len(),
        hist.mean(),
        hist.std_dev(),
        hist.skewness(),
        hist.excess_kurtosis()
    );
    println!("Jarque–Bera statistic: {:.1}\n", hist.jarque_bera());

    let mut rows = Vec::new();
    let max = hist.counts().iter().copied().max().unwrap_or(1).max(1);
    for i in 0..hist.counts().len() {
        let (lo, hi) = hist.bin_edges(i);
        let n = hist.count(i);
        let bar = "#".repeat((n * 50 / max) as usize);
        rows.push(vec![format!("[{lo:>6.0}, {hi:>6.0})"), n.to_string(), bar]);
    }
    println!("{}", render_table(&["q_error (B)", "count", ""], &rows));
    let csv: Vec<Vec<String>> = (0..hist.counts().len())
        .map(|i| {
            let (lo, hi) = hist.bin_edges(i);
            vec![lo.to_string(), hi.to_string(), hist.count(i).to_string()]
        })
        .collect();
    if let Some(p) = write_csv("fig6_3", &["bin_lo", "bin_hi", "count"], &csv) {
        println!("(csv: {})", p.display());
    }
    println!(
        "\nno-attack verdict under skew (σ calibrated to clock noise): detected = {} \
         (must be false), congestive drops judged = {}",
        verdict.detected,
        verdict.total_drops()
    );
    assert!(!verdict.detected, "false positive under calibrated skew");
    println!(
        "\nPaper shape to compare against: a roughly bell-shaped error\n\
         centred near zero whose spread reflects clock noise — the basis\n\
         for modelling q_error as N(µ, σ) (dissertation Fig 6.3)."
    );
}
