//! Figure 5.4: for Protocol Πk+2 under `AdjacentFault(k)`, the maximum,
//! average and median `|P_r|` — the number of path segments whose *end*
//! a router is — for k = 1..8, on the Sprintlink and EBONE shapes.
//! Compare with Figure 5.2: per-router state is bounded by roughly the
//! network size N instead of exploding with k.
//!
//! Run with `cargo run --release -p fatih-bench --bin fig5_4`.

use fatih_bench::{render_table, write_csv};
use fatih_stats::Summary;
use fatih_topology::{builtin, pik2_segment_counts};

fn main() {
    for (name, topo) in [
        ("sprintlink", builtin::sprintlink_like(1)),
        ("ebone", builtin::ebone_like(1)),
    ] {
        println!(
            "== Figure 5.4 (Protocol Πk+2) — {name}: {} routers, {} links ==",
            topo.router_count(),
            topo.duplex_link_count(),
        );
        let routes = topo.link_state_routes();
        let mut rows = Vec::new();
        for k in 1..=8usize {
            let counts = pik2_segment_counts(&routes, k);
            let s = Summary::from_iter(counts.iter().map(|&c| c as f64));
            rows.push(vec![
                k.to_string(),
                format!("{:.0}", s.max()),
                format!("{:.1}", s.mean()),
                format!("{:.0}", s.median()),
            ]);
            eprintln!("  k={k} done");
        }
        let headers = ["k", "max |Pr|", "avg |Pr|", "median |Pr|"];
        println!("{}", render_table(&headers, &rows));
        if let Some(p) = write_csv(&format!("fig5_4_{name}"), &headers, &rows) {
            println!("(csv: {})\n", p.display());
        }
    }
    println!(
        "Paper shape to compare against: values far below Figure 5.2's,\n\
         with the maximum flattening toward ~N as k grows (dissertation\n\
         Fig 5.4: Sprintlink max ≈ 300s vs Fig 5.2's thousands)."
    );
}
