//! Appendix A / §2.4.1 ablation: wire bytes exchanged per validation
//! round under the three set-difference mechanisms, as the round size
//! grows — the polynomial sketch's cost depends only on the *difference*
//! bound, which is the whole point.
//!
//! Run with `cargo run --release -p fatih-bench --bin tab_reconcile`.

use fatih_bench::{render_table, write_csv};
use fatih_crypto::UhashKey;
use fatih_validation::field::Fe;
use fatih_validation::{reconcile, BloomFilter, SetSketch};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("== Appendix A: per-round summary-exchange cost (8 losses to find) ==\n");
    let key = UhashKey::from_seed(1);
    let capacity = 10;
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for n in [100usize, 1_000, 10_000, 100_000] {
        let sent: Vec<Fe> = (0..n as u64)
            .map(|i| key.fingerprint(&i.to_le_bytes()).into())
            .collect();
        let mut received = sent.clone();
        for k in 0..8 {
            received.remove((n / 10) * (8 - k) - 1);
        }

        // Mechanism 1: resend every fingerprint (8 B each).
        let full_bytes = n * 8;

        // Mechanism 2: Bloom filter sized for 1% fp rate.
        let bloom = BloomFilter::with_rate(n, 0.01);
        let bloom_bytes = bloom.bit_len() / 8;

        // Mechanism 3: polynomial sketch (exact recovery, fixed size).
        let sketch = SetSketch::from_elements(sent.iter().copied(), capacity);
        let sketch_bytes = sketch.wire_bytes();
        // Verify it actually recovers the losses at this size.
        let other = SetSketch::from_elements(received.iter().copied(), capacity);
        let delta = reconcile(&sketch, &other, &mut StdRng::seed_from_u64(0))
            .expect("difference within capacity");
        assert_eq!(delta.only_in_a.len(), 8);

        rows.push(vec![
            n.to_string(),
            full_bytes.to_string(),
            bloom_bytes.to_string(),
            sketch_bytes.to_string(),
        ]);
        csv.push(vec![
            n.to_string(),
            full_bytes.to_string(),
            bloom_bytes.to_string(),
            sketch_bytes.to_string(),
        ]);
    }
    let headers = [
        "packets/round",
        "full exchange (B)",
        "bloom 1% (B)",
        "poly sketch (B)",
    ];
    println!("{}", render_table(&headers, &rows));
    if let Some(p) = write_csv("tab_reconcile", &headers, &csv) {
        println!("(csv: {})", p.display());
    }
    println!(
        "\nPaper shape to compare against: the naive exchange grows linearly\n\
         with traffic, Bloom filters grow linearly too (cheaper constant,\n\
         approximate answers), while the reconciliation sketch is constant —\n\
         'optimal in bandwidth utilization' (§2.4.1, Appendix A) — and\n\
         recovers the exact missing fingerprints."
    );
}
