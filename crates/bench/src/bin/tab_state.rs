//! The §5.1.1 / §5.2.1 state-size comparison: counters maintained per
//! router under WATCHERS (7 per neighbour per destination) versus the
//! per-segment state of Protocol Π2 and Protocol Πk+2 (one counter per
//! monitored segment per direction under conservation of flow).
//!
//! Dissertation reference points (real Sprintlink map): WATCHERS ≈ 13,605
//! average / 99,225 max; Π2 @ AdjacentFault(2): 216 avg / 2,172 max;
//! Πk+2 @ AdjacentFault(2): 232 avg / 496 max (×2 directions, §5.2.1
//! footnote); @ AdjacentFault(7): 616 avg / 626 max.
//!
//! Run with `cargo run --release -p fatih-bench --bin tab_state`.

use fatih_bench::{render_table, write_csv};
use fatih_core::watchers::watchers_counter_count;
use fatih_stats::Summary;
use fatih_topology::{builtin, pi2_segment_counts, pik2_segment_counts, Topology};

fn summarize(counts: Vec<usize>) -> (f64, f64) {
    let s = Summary::from_iter(counts.into_iter().map(|c| c as f64));
    (s.mean(), s.max())
}

fn run(name: &str, topo: &Topology) {
    println!(
        "== State comparison — {name}: {} routers, {} links ==",
        topo.router_count(),
        topo.duplex_link_count()
    );
    let routes = topo.link_state_routes();
    let mut rows = Vec::new();

    let watchers: Vec<usize> = topo
        .routers()
        .map(|r| watchers_counter_count(topo, r))
        .collect();
    let (avg, max) = summarize(watchers);
    rows.push(vec![
        "WATCHERS (7·deg·N)".into(),
        format!("{avg:.0}"),
        format!("{max:.0}"),
    ]);

    for k in [2usize, 7] {
        let (avg, max) = summarize(pi2_segment_counts(&routes, k));
        rows.push(vec![
            format!("Π2, AdjacentFault({k})"),
            format!("{avg:.0}"),
            format!("{max:.0}"),
        ]);
        // Πk+2 keeps two counters per monitored segment (one per
        // direction, §5.2.1).
        let counts: Vec<usize> = pik2_segment_counts(&routes, k)
            .into_iter()
            .map(|c| c * 2)
            .collect();
        let (avg, max) = summarize(counts);
        rows.push(vec![
            format!("Πk+2, AdjacentFault({k})"),
            format!("{avg:.0}"),
            format!("{max:.0}"),
        ]);
    }
    let headers = ["protocol", "avg counters", "max counters"];
    println!("{}", render_table(&headers, &rows));
    if let Some(p) = write_csv(&format!("tab_state_{name}"), &headers, &rows) {
        println!("(csv: {})\n", p.display());
    }
}

fn main() {
    run("sprintlink", &builtin::sprintlink_like(1));
    run("ebone", &builtin::ebone_like(1));
    run("abilene", &builtin::abilene());
    println!(
        "Paper shape to compare against: WATCHERS orders of magnitude above\n\
         both protocols; Πk+2's maximum far below Π2's and nearly flat in k."
    );
}
