//! Shared harness code for the figure regenerators and benchmarks.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! dissertation's evaluation (see `DESIGN.md` for the full index); this
//! library holds what they share: aligned table printing, CSV output under
//! `results/`, and the Protocol χ round-by-round experiment harness used
//! by Figures 6.3, 6.5–6.9, 6.11–6.16 and the §6.4.3 comparison.

use fatih_core::chi::{ChiConfig, QueueModel, QueueValidator};
use fatih_core::threshold::ThresholdDetector;
use fatih_crypto::KeyStore;
use fatih_sim::{Attack, AttackKind, Network, RedParams, SimTime, TcpConfig, VictimFilter};
use fatih_topology::{builtin, LinkParams, RouterId};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Renders a table with left-aligned first column and right-aligned rest.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        if i == 0 {
            let _ = write!(out, "{:<w$}", h, w = widths[i]);
        } else {
            let _ = write!(out, "  {:>w$}", h, w = widths[i]);
        }
    }
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i == 0 {
                let _ = write!(out, "{:<w$}", cell, w = widths[i]);
            } else {
                let _ = write!(out, "  {:>w$}", cell, w = widths[i]);
            }
        }
        out.push('\n');
    }
    out
}

/// Writes rows as CSV into `results/<name>.csv` (relative to the workspace
/// root when run via `cargo run`), creating the directory if needed.
/// Returns the path written, or `None` if the filesystem refused.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> Option<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.csv"));
    let mut body = headers.join(",");
    body.push('\n');
    for row in rows {
        body.push_str(&row.join(","));
        body.push('\n');
    }
    std::fs::write(&path, body).ok()?;
    Some(path)
}

/// Workload shape for the χ experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Constant-bit-rate sources (NS-style simulation, Fig 6.3).
    Cbr {
        /// Inter-packet gap per source in microseconds.
        interval_us: u64,
    },
    /// TCP file transfers (the Emulab setup of §6.4.2), plus a victim host
    /// repeatedly opening fresh connections (for the SYN attack).
    Tcp,
}

/// Which attack the compromised router r runs (§6.4.2 / §6.5.3 numbering).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChiAttack {
    /// No attack (Figs 6.5 / 6.11).
    None,
    /// Drop `fraction` of the selected flows (Fig 6.6: 20%).
    DropFraction(f64),
    /// Drop selected flows when the queue is `fill` full (Figs 6.7/6.8).
    QueueConditional(f64),
    /// Drop selected flows when RED's average exceeds `bytes`
    /// with probability `fraction` (Figs 6.12–6.15).
    AvgQueueConditional {
        /// Average-queue trigger in bytes.
        bytes: f64,
        /// Drop probability once triggered.
        fraction: f64,
    },
    /// Drop SYNs toward the victim (Fig 6.9 / Fig 6.16).
    SynDrop,
}

/// One validation round's observable outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRow {
    /// Round index (1-based).
    pub round: usize,
    /// Round end time in seconds.
    pub t_end: f64,
    /// Packets forwarded through the monitored queue.
    pub forwarded: usize,
    /// Missing packets judged this round.
    pub drops: usize,
    /// Drops individually consistent with congestion.
    pub congestion_consistent: usize,
    /// Highest single-loss confidence.
    pub max_single_confidence: f64,
    /// Combined-test confidence, if it ran.
    pub combined_confidence: Option<f64>,
    /// Honest-replay outcome mismatches (drop-tail mode).
    pub mismatches: usize,
    /// χ's verdict for the round.
    pub detected: bool,
    /// Ground truth: malicious drops at r so far (cumulative).
    pub truth_malicious: u64,
    /// Ground truth: congestive drops at r so far (cumulative).
    pub truth_congestive: u64,
}

impl RoundRow {
    /// Formats the row for the standard per-round table.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.round.to_string(),
            format!("{:.0}", self.t_end),
            self.forwarded.to_string(),
            self.drops.to_string(),
            self.congestion_consistent.to_string(),
            format!("{:.3}", self.max_single_confidence),
            self.combined_confidence
                .map(|c| format!("{c:.3}"))
                .unwrap_or_else(|| "-".into()),
            self.mismatches.to_string(),
            if self.detected { "YES" } else { "no" }.into(),
            self.truth_malicious.to_string(),
            self.truth_congestive.to_string(),
        ]
    }

    /// Headers matching [`cells`](Self::cells).
    pub fn headers() -> Vec<&'static str> {
        vec![
            "round", "t(s)", "fwd", "drops", "cong-ok", "c_single", "c_comb", "mismatch", "detect",
            "mal(GT)", "cong(GT)",
        ]
    }
}

/// Configuration of one χ experiment run on the Fig 6.4 fan-in topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiExperiment {
    /// Source routers feeding the bottleneck.
    pub sources: usize,
    /// Bottleneck queue limit in bytes.
    pub q_limit: u32,
    /// Bottleneck bandwidth in bits/s.
    pub bandwidth_bps: u64,
    /// RED parameters; `None` = drop-tail.
    pub red: Option<RedParams>,
    /// Workload shape.
    pub workload: Workload,
    /// The attack at router r.
    pub attack: ChiAttack,
    /// When set (TCP workload), the victim is a constant-rate application
    /// flow at this packet rate instead of a TCP flow — a victim that does
    /// not back off, like the dissertation's "selected flows" whose drops
    /// keep accumulating evidence.
    pub victim_cbr_pps: Option<u32>,
    /// Validation round length.
    pub round: SimTime,
    /// Number of rounds to run.
    pub rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChiExperiment {
    fn default() -> Self {
        Self {
            sources: 3,
            q_limit: 64_000,
            bandwidth_bps: 8_000_000,
            red: None,
            workload: Workload::Cbr { interval_us: 1_100 },
            attack: ChiAttack::None,
            victim_cbr_pps: None,
            round: SimTime::from_secs(5),
            rounds: 10,
            seed: 11,
        }
    }
}

/// The result of a χ experiment: per-round rows plus final ground truth.
#[derive(Debug, Clone)]
pub struct ChiOutcome {
    /// Per-round observations.
    pub rows: Vec<RoundRow>,
    /// Final ground truth.
    pub truth: fatih_sim::GroundTruth,
}

impl ChiOutcome {
    /// Whether any round detected the router.
    pub fn detected(&self) -> bool {
        self.rows.iter().any(|r| r.detected)
    }

    /// Number of detecting rounds.
    pub fn detected_rounds(&self) -> usize {
        self.rows.iter().filter(|r| r.detected).count()
    }
}

impl ChiExperiment {
    /// Builds the network, runs the rounds, and reports.
    pub fn run(&self) -> ChiOutcome {
        let bottleneck = LinkParams {
            bandwidth_bps: self.bandwidth_bps,
            queue_limit_bytes: self.q_limit,
            ..LinkParams::default()
        };
        let topo = builtin::fan_in(self.sources, bottleneck);
        let mut ks = KeyStore::with_seed(self.seed);
        for r in topo.routers() {
            ks.register(r.into());
        }
        let r = topo.router_by_name("r").expect("fan_in names");
        let rd = topo.router_by_name("rd").expect("fan_in names");
        let model = match self.red {
            Some(p) => QueueModel::Red(p),
            None => QueueModel::DropTail,
        };
        let mut validator = QueueValidator::new(&topo, &ks, r, rd, model, ChiConfig::default());
        let mut net = Network::new(topo, self.seed);
        if let Some(p) = self.red {
            net.set_queue_discipline(r, rd, fatih_sim::QueueDiscipline::Red(p));
        }
        let victim_flows = self.spawn_workload(&mut net, rd);
        self.install_attack(&mut net, r, rd, &victim_flows);

        let routes = net.routes().clone();
        let mut rows = Vec::with_capacity(self.rounds);
        for round in 1..=self.rounds {
            let end = self.round * round as u64;
            net.run_until(end, |ev| {
                validator.observe(ev, |p| {
                    routes
                        .path(p.src, p.dst)
                        .and_then(|path| path.next_after(r))
                })
            });
            let verdict = validator.end_round(end);
            let truth = net.ground_truth();
            rows.push(RoundRow {
                round,
                t_end: end.as_secs_f64(),
                forwarded: verdict.forwarded,
                drops: verdict.total_drops(),
                congestion_consistent: verdict.congestion_consistent,
                max_single_confidence: verdict.max_single_confidence(),
                combined_confidence: verdict.combined_confidence,
                mismatches: verdict.outcome_mismatches,
                detected: verdict.detected,
                truth_malicious: truth.malicious_drops,
                truth_congestive: truth.congestive_drops,
            });
        }
        ChiOutcome {
            rows,
            truth: net.ground_truth(),
        }
    }

    /// Spawns the configured workload; returns the victim flow ids.
    pub fn spawn_workload(&self, net: &mut Network, rd: RouterId) -> Vec<fatih_sim::FlowId> {
        let mut victims = Vec::new();
        let horizon = self.round * self.rounds as u64;
        match self.workload {
            Workload::Cbr { interval_us } => {
                for i in 0..self.sources {
                    let s = net
                        .topology()
                        .router_by_name(&format!("s{i}"))
                        .expect("source name");
                    let f = net.add_cbr_flow(
                        s,
                        rd,
                        1000,
                        SimTime::from_us(interval_us),
                        SimTime::from_us(137 * i as u64),
                        Some(horizon),
                    );
                    if i == 0 {
                        victims.push(f);
                    }
                }
            }
            Workload::Tcp => {
                for i in 0..self.sources {
                    let s = net
                        .topology()
                        .router_by_name(&format!("s{i}"))
                        .expect("source name");
                    let f = net.add_tcp_flow(
                        s,
                        rd,
                        TcpConfig::default(),
                        SimTime::from_ms(13 * i as u64),
                        1u64 << 40, // effectively unbounded transfer
                    );
                    if i == 0 && self.victim_cbr_pps.is_none() {
                        victims.push(f);
                    }
                }
                if let Some(pps) = self.victim_cbr_pps {
                    let s0 = net.topology().router_by_name("s0").expect("source");
                    let f = net.add_cbr_flow(
                        s0,
                        rd,
                        1000,
                        SimTime::from_ns(1_000_000_000 / pps as u64),
                        SimTime::ZERO,
                        Some(horizon),
                    );
                    victims.push(f);
                }
                // The SYN-attack victim: s0 keeps opening fresh
                // connections through r.
                if matches!(self.attack, ChiAttack::SynDrop) {
                    let s0 = net.topology().router_by_name("s0").expect("source");
                    for j in 0..self.rounds as u64 {
                        let f = net.add_tcp_flow(
                            s0,
                            rd,
                            TcpConfig::default(),
                            self.round * j + SimTime::from_ms(500),
                            5,
                        );
                        victims.push(f);
                    }
                }
            }
        }
        victims
    }

    /// Installs the configured attack at router `r`.
    pub fn install_attack(
        &self,
        net: &mut Network,
        r: RouterId,
        rd: RouterId,
        victims: &[fatih_sim::FlowId],
    ) {
        let filter = VictimFilter::flows(victims.iter().copied());
        let attack = match self.attack {
            ChiAttack::None => return,
            ChiAttack::DropFraction(fraction) => Attack {
                victims: filter,
                kind: AttackKind::Drop { fraction },
            },
            ChiAttack::QueueConditional(fill) => Attack {
                victims: filter,
                kind: AttackKind::DropWhenQueueAbove {
                    fill,
                    fraction: 1.0,
                },
            },
            ChiAttack::AvgQueueConditional { bytes, fraction } => Attack {
                victims: filter,
                kind: AttackKind::DropWhenAvgQueueAbove {
                    avg_bytes: bytes,
                    fraction,
                },
            },
            ChiAttack::SynDrop => Attack::drop_syns_to(rd),
        };
        net.set_attacks(r, vec![attack]);
    }
}

/// Runs the same scenario past a static-threshold detector instead of χ
/// (§6.4.3). Returns per-round (loss fraction, detected).
pub fn run_threshold_baseline(exp: &ChiExperiment, threshold: f64) -> Vec<(f64, bool)> {
    let bottleneck = LinkParams {
        bandwidth_bps: exp.bandwidth_bps,
        queue_limit_bytes: exp.q_limit,
        ..LinkParams::default()
    };
    let topo = builtin::fan_in(exp.sources, bottleneck);
    let mut ks = KeyStore::with_seed(exp.seed);
    for r in topo.routers() {
        ks.register(r.into());
    }
    let r = topo.router_by_name("r").expect("fan_in names");
    let rd = topo.router_by_name("rd").expect("fan_in names");
    let mut det = ThresholdDetector::new(&topo, &ks, r, rd, threshold);
    let mut net = Network::new(topo, exp.seed);
    if let Some(p) = exp.red {
        net.set_queue_discipline(r, rd, fatih_sim::QueueDiscipline::Red(p));
    }
    let victims = exp.spawn_workload(&mut net, rd);
    exp.install_attack(&mut net, r, rd, &victims);
    let routes = net.routes().clone();
    let mut out = Vec::new();
    for round in 1..=exp.rounds {
        let end = exp.round * round as u64;
        net.run_until(end, |ev| {
            det.observe(ev, |p| {
                routes
                    .path(p.src, p.dst)
                    .and_then(|path| path.next_after(r))
            })
        });
        let v = det.end_round(end);
        out.push((v.loss_fraction, v.detected));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "23".into()],
            ],
        );
        assert!(t.contains("long-name"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn chi_experiment_clean_run_has_no_detection() {
        let exp = ChiExperiment {
            rounds: 3,
            round: SimTime::from_secs(2),
            ..ChiExperiment::default()
        };
        let out = exp.run();
        assert_eq!(out.rows.len(), 3);
        assert!(!out.detected(), "{:?}", out.rows);
        assert_eq!(out.truth.malicious_drops, 0);
    }

    #[test]
    fn chi_experiment_attack_run_detects() {
        let exp = ChiExperiment {
            attack: ChiAttack::DropFraction(0.2),
            rounds: 3,
            round: SimTime::from_secs(2),
            ..ChiExperiment::default()
        };
        let out = exp.run();
        assert!(out.truth.malicious_drops > 0);
        assert!(out.detected());
    }

    #[test]
    fn threshold_baseline_runs() {
        let exp = ChiExperiment {
            rounds: 2,
            round: SimTime::from_secs(2),
            ..ChiExperiment::default()
        };
        let rows = run_threshold_baseline(&exp, 0.1);
        assert_eq!(rows.len(), 2);
    }
}
