//! §2.4.1 / Appendix A ablation: the cost of the three set-difference
//! mechanisms for conservation-of-content — resend every fingerprint,
//! Bloom filters, and characteristic-polynomial set reconciliation — for
//! a round of 1,000 packets with a handful of losses, plus a scaling
//! sweep at 10,000-packet rounds over difference sizes {0, 1, 16, 256}
//! (the regime the live runtime's reconciliation-based summary exchange
//! operates in).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fatih_crypto::{Fingerprint, UhashKey};
use fatih_validation::digest::{diff_via_digest, ContentDigest};
use fatih_validation::field::Fe;
use fatih_validation::summary::ContentSummary;
use fatih_validation::{reconcile, BloomFilter, SetSketch};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 1_000;
const CAPACITY: usize = 8;

fn fingerprints() -> Vec<Fe> {
    let key = UhashKey::from_seed(3);
    (0..N as u64)
        .map(|i| key.fingerprint(&i.to_le_bytes()).into())
        .collect()
}

fn bench_reconcile(c: &mut Criterion) {
    let sent = fingerprints();
    let mut received = sent.clone();
    received.remove(700);
    received.remove(300);
    received.remove(50);

    let mut g = c.benchmark_group("set_difference/1000pkts_3lost");

    g.bench_function("full_exchange_sort_diff", |b| {
        b.iter(|| {
            // The naive mechanism: ship all fingerprints, sort, diff.
            let mut a = sent.clone();
            let mut r = received.clone();
            a.sort_unstable();
            r.sort_unstable();
            let mut missing = Vec::new();
            let mut j = 0;
            for x in &a {
                if j < r.len() && r[j] == *x {
                    j += 1;
                } else {
                    missing.push(*x);
                }
            }
            black_box(missing)
        })
    });

    g.bench_function("bloom_build_and_estimate", |b| {
        b.iter(|| {
            let mut fa = BloomFilter::with_rate(N, 0.01);
            let mut fb = BloomFilter::with_rate(N, 0.01);
            for &x in &sent {
                fa.insert(fatih_crypto::Fingerprint::new(x.value()));
            }
            for &x in &received {
                fb.insert(fatih_crypto::Fingerprint::new(x.value()));
            }
            black_box(fa.estimate_symmetric_difference(&fb))
        })
    });

    g.bench_function("polynomial_sketch_build", |b| {
        b.iter(|| black_box(SetSketch::from_elements(sent.iter().copied(), CAPACITY)))
    });

    let sa = SetSketch::from_elements(sent.iter().copied(), CAPACITY);
    let sb = SetSketch::from_elements(received.iter().copied(), CAPACITY);
    g.bench_function("polynomial_reconcile", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(reconcile(&sa, &sb, &mut rng).expect("within capacity")))
    });

    g.finish();
}

/// 10k-packet rounds across difference sizes {0, 1, 16, 256}: sketch
/// build (linear in traffic, done once per round end), the reconcile
/// decode (cubic in capacity, independent of traffic), and the full
/// certified digest resolution the live runtime performs per exchange.
fn bench_reconcile_scaling(c: &mut Criterion) {
    const BIG: usize = 10_000;
    let key = UhashKey::from_seed(7);
    let all: Vec<Fe> = (0..BIG as u64)
        .map(|i| key.fingerprint(&i.to_le_bytes()).into())
        .collect();

    for &diff in &[0usize, 1, 16, 256] {
        // Capacity sized to the diff with headroom, as a deployment would.
        let capacity = diff + 8;
        let received: Vec<Fe> = all[..BIG - diff].to_vec();
        let mut g = c.benchmark_group(format!("set_difference/10000pkts_{diff}diff"));
        g.sample_size(10);

        g.bench_function("sketch_build", |b| {
            b.iter(|| black_box(SetSketch::from_elements(all.iter().copied(), capacity)))
        });

        let sa = SetSketch::from_elements(all.iter().copied(), capacity);
        let sb = SetSketch::from_elements(received.iter().copied(), capacity);
        g.bench_function("reconcile_decode", |b| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| black_box(reconcile(&sa, &sb, &mut rng).expect("within capacity")))
        });

        // The live exchange: certify the digest against the local summary
        // and recover the exact multiset difference.
        let mut sent_sum = ContentSummary::default();
        for fe in &all {
            sent_sum.observe(Fingerprint::new(fe.value()), 1000);
        }
        let mut recv_sum = ContentSummary::default();
        for fe in &received {
            recv_sum.observe(Fingerprint::new(fe.value()), 1000);
        }
        let digest = ContentDigest::of(&sent_sum, capacity);
        g.bench_function("digest_certified_resolve", |b| {
            let mut rng = StdRng::seed_from_u64(13);
            b.iter(|| black_box(diff_via_digest(&digest, &recv_sum, &mut rng).expect("resolves")))
        });

        g.finish();
    }
}

criterion_group!(benches, bench_reconcile, bench_reconcile_scaling);
criterion_main!(benches);
