//! Protocol-side costs: monitored-segment enumeration (the setup cost of
//! Chapter 5's detectors, §5.1.1/§5.2.1) and one Dolev–Strong broadcast
//! (Π2's per-report dissemination).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fatih_core::consensus::dolev_strong;
use fatih_crypto::KeyStore;
use fatih_topology::{builtin, pi2_segment_counts, pik2_segment_counts};
use std::collections::BTreeMap;

fn bench_segments(c: &mut Criterion) {
    let topo = builtin::ebone_like(1);
    let routes = topo.link_state_routes();
    let mut g = c.benchmark_group("segment_enumeration_ebone");
    g.sample_size(10);
    for k in [2usize, 4] {
        g.bench_function(format!("pi2_k{k}"), |b| {
            b.iter(|| black_box(pi2_segment_counts(&routes, k)))
        });
        g.bench_function(format!("pik2_k{k}"), |b| {
            b.iter(|| black_box(pik2_segment_counts(&routes, k)))
        });
    }
    g.finish();
}

fn bench_consensus(c: &mut Criterion) {
    let mut ks = KeyStore::with_seed(5);
    for i in 0..8 {
        ks.register(i);
    }
    let report = vec![0xabu8; 512];
    let mut g = c.benchmark_group("dolev_strong_512B_report");
    for (n, f) in [(3usize, 1usize), (5, 2), (8, 3)] {
        let participants: Vec<u32> = (0..n as u32).collect();
        g.bench_function(format!("n{n}_f{f}"), |b| {
            b.iter(|| {
                black_box(dolev_strong(
                    &ks,
                    &participants,
                    0,
                    &report,
                    &BTreeMap::new(),
                    f,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_segments, bench_consensus);
criterion_main!(benches);
