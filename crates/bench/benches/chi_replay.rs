//! §7.1–7.2 for Protocol χ: the cost of one validation round — replaying
//! a congested queue's entries/exits and judging the losses — measured on
//! a recorded 5-second round of the Fig 6.4 experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fatih_core::chi::{ChiConfig, QueueModel, QueueValidator};
use fatih_crypto::KeyStore;
use fatih_sim::{Network, SimTime, TapEvent};
use fatih_topology::{builtin, LinkParams};

/// Records the tap-event stream of a 5-second congested round once.
fn record_round() -> (fatih_topology::Topology, KeyStore, Vec<TapEvent>) {
    let bottleneck = LinkParams {
        bandwidth_bps: 8_000_000,
        queue_limit_bytes: 16_000,
        ..LinkParams::default()
    };
    let topo = builtin::fan_in(3, bottleneck);
    let mut ks = KeyStore::with_seed(9);
    for r in topo.routers() {
        ks.register(r.into());
    }
    let rd = topo.router_by_name("rd").unwrap();
    let mut net = Network::new(topo.clone(), 9);
    for i in 0..3 {
        let s = net.topology().router_by_name(&format!("s{i}")).unwrap();
        net.add_cbr_flow(
            s,
            rd,
            1000,
            SimTime::from_us(1_100),
            SimTime::ZERO,
            Some(SimTime::from_secs(5)),
        );
    }
    let mut events = Vec::new();
    net.run_until(SimTime::from_secs(6), |ev| events.push(*ev));
    (topo, ks, events)
}

fn bench_chi(c: &mut Criterion) {
    let (topo, ks, events) = record_round();
    let r = topo.router_by_name("r").unwrap();
    let rd = topo.router_by_name("rd").unwrap();
    let routes = topo.link_state_routes();

    let mut g = c.benchmark_group("chi_round_5s_congested");
    g.sample_size(20);
    g.bench_function("observe_and_replay", |b| {
        b.iter(|| {
            let mut v = QueueValidator::new(
                &topo,
                &ks,
                r,
                rd,
                QueueModel::DropTail,
                ChiConfig::default(),
            );
            for ev in &events {
                v.observe(ev, |p| {
                    routes
                        .path(p.src, p.dst)
                        .and_then(|path| path.next_after(r))
                });
            }
            black_box(v.end_round(SimTime::from_secs(6)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_chi);
criterion_main!(benches);
