//! §7.1 "Computing fingerprints": the per-packet cost of the UHASH-style
//! universal hash (what Fatih uses on the forwarding path) versus a full
//! cryptographic hash (SHA-256) and HMAC-SHA256 — the reason the
//! prototype chose UHASH.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fatih_crypto::{hmac::hmac_sha256, Sha256, UhashKey};

fn bench_fingerprints(c: &mut Criterion) {
    let key = UhashKey::from_seed(7);
    for size in [40usize, 512, 1500] {
        let packet: Vec<u8> = (0..size).map(|i| i as u8).collect();
        let mut g = c.benchmark_group(format!("fingerprint/{size}B"));
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function("uhash", |b| {
            b.iter(|| black_box(key.fingerprint(black_box(&packet))))
        });
        g.bench_function("sha256", |b| {
            b.iter(|| black_box(Sha256::digest(black_box(&packet))))
        });
        g.bench_function("hmac_sha256", |b| {
            b.iter(|| black_box(hmac_sha256(b"key", black_box(&packet))))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_fingerprints);
criterion_main!(benches);
