//! §7.1 "Computing fingerprints": the per-packet cost of the UHASH-style
//! universal hash (what Fatih uses on the forwarding path) versus a full
//! cryptographic hash (SHA-256) and HMAC-SHA256 — the reason the
//! prototype chose UHASH — plus the fast-path kernel variants: the scalar
//! Horner baseline, the 4-lane one-shot kernel, the cross-message batch
//! path, and the streaming hasher.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fatih_crypto::{hmac::hmac_sha256, FingerprintHasher, Sha256, UhashKey};

fn bench_fingerprints(c: &mut Criterion) {
    let key = UhashKey::from_seed(7);
    for size in [40usize, 512, 1500] {
        let packet: Vec<u8> = (0..size).map(|i| i as u8).collect();
        let mut g = c.benchmark_group(format!("fingerprint/{size}B"));
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function("uhash_scalar", |b| {
            b.iter(|| black_box(key.fingerprint_scalar(black_box(&packet))))
        });
        g.bench_function("uhash", |b| {
            b.iter(|| black_box(key.fingerprint(black_box(&packet))))
        });
        g.bench_function("uhash_streaming", |b| {
            b.iter(|| {
                let mut h = FingerprintHasher::new(&key);
                h.update(black_box(&packet));
                black_box(h.finalize())
            })
        });
        g.bench_function("sha256", |b| {
            b.iter(|| black_box(Sha256::digest(black_box(&packet))))
        });
        g.bench_function("hmac_sha256", |b| {
            b.iter(|| black_box(hmac_sha256(b"key", black_box(&packet))))
        });
        g.finish();
    }
}

fn bench_batch(c: &mut Criterion) {
    let key = UhashKey::from_seed(7);
    const GROUP: usize = 64;
    for size in [40usize, 1500] {
        let packets: Vec<Vec<u8>> = (0..GROUP)
            .map(|p| (0..size).map(|i| (i + p) as u8).collect())
            .collect();
        let msgs: Vec<&[u8]> = packets.iter().map(|p| &p[..]).collect();
        let mut g = c.benchmark_group(format!("fingerprint_batch/{size}B"));
        g.throughput(Throughput::Bytes((size * GROUP) as u64));
        g.bench_function("one_shot_x64", |b| {
            b.iter(|| {
                for m in &msgs {
                    black_box(key.fingerprint(black_box(m)));
                }
            })
        });
        g.bench_function("batch_x64", |b| {
            let mut out = Vec::with_capacity(GROUP);
            b.iter(|| {
                key.fingerprint_batch_into(black_box(&msgs), &mut out);
                black_box(out.last().copied())
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_fingerprints, bench_batch);
criterion_main!(benches);
