//! Observability for the fatih runtimes: metrics, traces, and their
//! exports.
//!
//! Chapter 7 of the dissertation is an *accounting* argument — per-router
//! state, control bytes per round, validation cost per packet — and a
//! watchdog-style detection system is only trustworthy when its decisions
//! are auditable after the fact. This crate is the shared instrumentation
//! substrate those two needs meet in. It has no dependencies and three
//! pieces:
//!
//! * [`metrics`] — a process-wide [`MetricsRegistry`] of named, atomic
//!   [`Counter`]s, [`Gauge`]s and log-bucketed [`Histogram`]s, snapshot
//!   at any time into an immutable [`MetricsSnapshot`] with p50/p90/p99
//!   summaries and a JSON export. The live runtime, the monitors, the
//!   simulator and the bench harnesses all register into one of these
//!   instead of growing bespoke counter structs.
//! * [`trace`] — a structured trace journal: each shard of the live
//!   runtime owns a [`TraceBuffer`] (a bounded ring it alone writes to —
//!   no locks anywhere on the hot path) of typed [`TraceEvent`]s with
//!   per-shard sequence numbers and monotonic timestamps. After a run the
//!   buffers merge into a [`TraceJournal`] that drains to JSONL and to
//!   the `chrome://tracing` trace-event format for flamegraph-style
//!   inspection.
//! * [`json`] — the minimal JSON writer/parser the exports are built on
//!   (and round-trip tested against), so nothing here needs serde.
//!
//! # Examples
//!
//! Count, observe, snapshot:
//!
//! ```
//! use fatih_obs::{MetricsRegistry};
//!
//! let reg = MetricsRegistry::new();
//! let delivered = reg.counter("net.data_delivered");
//! let rtt = reg.histogram("net.rtt_ns");
//! for i in 0..100 {
//!     delivered.inc();
//!     rtt.record(1_000 + i * 10);
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("net.data_delivered"), 100);
//! let h = snap.histogram("net.rtt_ns").unwrap();
//! assert_eq!(h.count, 100);
//! assert!(h.p50 >= 1_000 && h.p99 <= h.max * 2);
//! assert!(snap.to_json().contains("net.data_delivered"));
//! ```
//!
//! Trace a round and drain the journal:
//!
//! ```
//! use fatih_obs::{TraceBuffer, TraceJournal, TraceKind};
//!
//! let mut shard0 = TraceBuffer::new(0, 1024);
//! shard0.record(10, TraceKind::RoundStart, 3, 0, 0);
//! shard0.record(25, TraceKind::AccusationRaised, 3, 0, 1);
//! shard0.record(40, TraceKind::RoundEnd, 3, 0, 0);
//! let journal = TraceJournal::from_buffers([shard0]);
//! assert_eq!(journal.recorded(TraceKind::AccusationRaised), 1);
//! let jsonl = journal.to_jsonl();
//! let back = TraceJournal::from_jsonl(&jsonl).unwrap();
//! assert_eq!(back.events(), journal.events());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod trace;

pub use json::{JsonError, JsonValue};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use trace::{TraceBuffer, TraceEvent, TraceJournal, TraceKind};
