//! The metrics registry: named atomic counters, gauges and log-bucketed
//! histograms, snapshot on demand.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of an
//! `Arc`'d atomic cell: registration takes a short-lived lock once, but
//! every increment/record afterwards is a single relaxed atomic operation,
//! so instrumented hot paths (per-packet taps, per-frame sends) pay
//! nanoseconds. A handle that was never registered still works — it just
//! counts into a private cell — which lets library types default their
//! instrumentation and have a runtime swap registered handles in.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
///
/// ```
/// use fatih_obs::Counter;
/// let c = Counter::default();
/// let c2 = c.clone(); // same cell
/// c.inc();
/// c2.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding an `f64` (stored as its bit pattern in
/// an atomic word, so readers never see a torn value).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Buckets: values 0..16 exact, then 16 log-linear sub-buckets per power
/// of two. Relative quantile error is bounded by 1/16 ≈ 6.25%.
const SUB_BUCKETS: usize = 16;
const SUB_SHIFT: u32 = 4;
const BUCKETS: usize = SUB_BUCKETS + (64 - SUB_SHIFT as usize) * SUB_BUCKETS;

/// Bucket index of a value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_SHIFT)) & (SUB_BUCKETS as u64 - 1)) as usize;
    SUB_BUCKETS + (msb - SUB_SHIFT) as usize * SUB_BUCKETS + sub
}

/// Smallest value that lands in bucket `i` (inverse of [`bucket_of`]).
fn bucket_floor(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let rest = i - SUB_BUCKETS;
    let msb = rest / SUB_BUCKETS + SUB_SHIFT as usize;
    let sub = (rest % SUB_BUCKETS) as u64;
    (1u64 << msb) + (sub << (msb - SUB_SHIFT as usize))
}

#[derive(Debug)]
struct HistCell {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistCell {
    fn default() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A lock-free log-linear histogram of `u64` samples (latencies in
/// nanoseconds, sizes in bytes).
///
/// Samples land in one of ~1000 fixed buckets (16 linear sub-buckets per
/// power of two), so quantiles read back within ≈6% of the true value
/// while `record` stays a couple of relaxed atomic operations.
///
/// ```
/// use fatih_obs::Histogram;
/// let h = Histogram::default();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let s = h.snapshot();
/// assert_eq!((s.count, s.min, s.max), (1000, 1, 1000));
/// assert!(s.p50 >= 450 && s.p50 <= 550, "p50 was {}", s.p50);
/// assert!(s.p99 >= 930, "p99 was {}", s.p99);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistCell>);

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let c = &*self.0;
        c.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// An immutable summary of everything recorded so far.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &*self.0;
        let buckets: Vec<u64> = c
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= target {
                    return bucket_floor(i);
                }
            }
            bucket_floor(BUCKETS - 1)
        };
        let min = c.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: c.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Wrapping sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (bucket-resolution, ≈6% relative error).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of metrics, shared by cloning.
///
/// One registry spans a whole deployment: every shard, node, monitor and
/// transport registers its handles here, and [`snapshot`] reads them all
/// coherently enough for accounting (each cell is read atomically; the
/// set is not read in one global instant — fine for counters that only
/// grow).
///
/// [`snapshot`]: MetricsRegistry::snapshot
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use. Subsequent calls
    /// (from any clone of the registry) return a handle to the same cell.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Reads every registered metric into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// An immutable point-in-time view of a [`MetricsRegistry`].
///
/// ```
/// use fatih_obs::MetricsRegistry;
/// let reg = MetricsRegistry::new();
/// reg.counter("a.hits").add(7);
/// reg.gauge("a.rate").set(1.5);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("a.hits"), 7);
/// assert_eq!(snap.counter("a.misses"), 0); // absent reads as zero
/// let json = snap.to_json();
/// let parsed = fatih_obs::JsonValue::parse(&json).unwrap();
/// assert_eq!(parsed.pointer(&["counters", "a.hits"]).unwrap().as_u64(), Some(7));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value (0 if it was never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value (0.0 if it was never registered).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// A histogram's summary, if it was registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Counter-wise difference `self − earlier` (saturating at zero), for
    /// per-round deltas out of cumulative counters. Gauges and histograms
    /// are carried from `self` unchanged.
    pub fn counter_delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Serializes the snapshot as a JSON object with `counters`, `gauges`
    /// and `histograms` members.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            crate::json::write_string(&mut out, k);
            out.push_str(&format!(": {v}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            crate::json::write_string(&mut out, k);
            out.push_str(&format!(": {}", crate::json::fmt_f64(*v)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            crate::json::write_string(&mut out, k);
            out.push_str(&format!(
                ": {{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {} }}",
                h.count,
                h.sum,
                h.min,
                h.max,
                crate::json::fmt_f64(h.mean()),
                h.p50,
                h.p90,
                h.p99
            ));
        }
        out.push_str("\n  }\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trips_its_floor() {
        for i in 0..BUCKETS {
            let f = bucket_floor(i);
            assert_eq!(bucket_of(f), i, "floor of bucket {i} maps back");
        }
    }

    #[test]
    fn bucket_bounds_relative_error() {
        for &v in &[1u64, 15, 16, 17, 100, 999, 1_000_000, u64::MAX / 3] {
            let f = bucket_floor(bucket_of(v));
            assert!(f <= v, "floor {f} above value {v}");
            assert!(
                (v - f) as f64 <= v as f64 / 16.0 + 1.0,
                "bucket floor {f} more than 1/16 below {v}"
            );
        }
    }

    #[test]
    fn histogram_quantiles_on_uniform_data() {
        let h = Histogram::default();
        for v in 0..10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 9_999);
        let rel = |got: u64, want: u64| (got as f64 - want as f64).abs() / want as f64;
        assert!(rel(s.p50, 5_000) < 0.07, "p50 {}", s.p50);
        assert!(rel(s.p90, 9_000) < 0.07, "p90 {}", s.p90);
        assert!(rel(s.p99, 9_900) < 0.07, "p99 {}", s.p99);
    }

    #[test]
    fn registry_shares_cells_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.clone().counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counter("x"), 3);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let h = Histogram::default();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn counter_delta_subtracts_saturating() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        c.add(5);
        let early = reg.snapshot();
        c.add(3);
        let late = reg.snapshot();
        assert_eq!(late.counter_delta(&early).counter("n"), 3);
        assert_eq!(early.counter_delta(&late).counter("n"), 0);
    }

    #[test]
    fn snapshot_json_parses_back() {
        let reg = MetricsRegistry::new();
        reg.counter("c\"quoted\"").add(1);
        reg.gauge("g").set(-2.25);
        reg.histogram("h").record(42);
        let json = reg.snapshot().to_json();
        let v = crate::json::JsonValue::parse(&json).expect("valid json");
        assert_eq!(
            v.pointer(&["counters", "c\"quoted\""]).unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(v.pointer(&["gauges", "g"]).unwrap().as_f64(), Some(-2.25));
        assert_eq!(
            v.pointer(&["histograms", "h", "count"]).unwrap().as_u64(),
            Some(1)
        );
    }
}
