//! A minimal JSON value, writer and recursive-descent parser.
//!
//! The exports in this crate (metrics snapshots, trace journals, bench
//! reports) are emitted as JSON and *round-trip tested*: everything we
//! write must parse back to the same value. Pulling in serde for that
//! would be the crate's only heavy dependency, so instead this module
//! implements the small slice of JSON the exports actually use. Two
//! deliberate choices:
//!
//! * integers parse into [`JsonValue::Int`] (an `i128`), not `f64`, so
//!   `u64` counters and nanosecond timestamps survive a round trip
//!   without losing low bits;
//! * [`fmt_f64`] uses Rust's shortest round-trip float formatting, so a
//!   gauge written and re-parsed compares equal.
//!
//! ```
//! use fatih_obs::JsonValue;
//! let v = JsonValue::parse(r#"{"a": [1, 2.5, "x"], "b": {"c": 18446744073709551615}}"#).unwrap();
//! assert_eq!(v.pointer(&["b", "c"]).unwrap().as_u64(), Some(u64::MAX));
//! assert_eq!(v.pointer(&["a"]).unwrap().as_array().unwrap().len(), 3);
//! ```

use std::fmt;

/// A parsed JSON document.
///
/// Objects keep their members in source order; lookup via
/// [`JsonValue::get`] or [`JsonValue::pointer`] is a linear scan, which
/// is fine for the small documents this crate round-trips in tests.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without `.`, `e` or `E` — kept exact.
    Int(i128),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, members in source order.
    Object(Vec<(String, JsonValue)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// Human-readable description.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses one JSON document; trailing whitespace is allowed, trailing
    /// content is an error.
    pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
        let b = s.as_bytes();
        let mut p = Parser { b, i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != b.len() {
            return Err(JsonError {
                at: p.i,
                msg: "trailing content after document",
            });
        }
        Ok(v)
    }

    /// Member `key` of an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks nested objects by key: `v.pointer(&["a", "b"])` is
    /// `v.get("a")?.get("b")`.
    pub fn pointer(&self, path: &[&str]) -> Option<&JsonValue> {
        path.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The value as a `u64`, if it is an in-range integer (or a float
    /// with no fractional part).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::Int(i) => u64::try_from(i).ok(),
            JsonValue::Num(f) if f >= 0.0 && f <= u64::MAX as f64 && f.fract() == 0.0 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert; precision may be lost
    /// above 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Int(i) => Some(i as f64),
            JsonValue::Num(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` as a valid JSON number that parses back to the same
/// value (shortest round-trip form); non-finite values become `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // Rust's Debug for f64 is the shortest representation that
        // round-trips, and is always a valid JSON number.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.i, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.eat_lit("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \u-escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.i += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("control character in string")),
                c => {
                    // Re-assemble the UTF-8 sequence starting at c.
                    let start = self.i - 1;
                    let len = match c {
                        _ if c < 0x80 => 1,
                        _ if c >= 0xF0 => 4,
                        _ if c >= 0xE0 => 3,
                        _ => 2,
                    };
                    if start + len > self.b.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let s = std::str::from_utf8(&self.b[start..start + len])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.i = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.i + 4 > self.b.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.i += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("digits are ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonError {
                at: start,
                msg: "invalid number",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" -12 ").unwrap(), JsonValue::Int(-12));
        assert_eq!(JsonValue::parse("2.5").unwrap(), JsonValue::Num(2.5));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Num(1000.0));
        assert_eq!(
            JsonValue::parse("\"a\\nb\"").unwrap(),
            JsonValue::Str("a\nb".into())
        );
    }

    #[test]
    fn u64_max_survives() {
        let v = JsonValue::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" slash\\ newline\n tab\t unicode\u{1F600}\u{7}";
        let mut out = String::new();
        write_string(&mut out, original);
        let back = JsonValue::parse(&out).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn floats_round_trip() {
        for v in [0.0, -2.25, 1.0e300, std::f64::consts::PI, f64::MIN_POSITIVE] {
            let s = fmt_f64(v);
            let back = JsonValue::parse(&s).unwrap();
            assert_eq!(back.as_f64(), Some(v), "value {v} via {s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn pointer_walks_objects() {
        let v = JsonValue::parse(r#"{"a": {"b": {"c": 3}}, "x": [1]}"#).unwrap();
        assert_eq!(v.pointer(&["a", "b", "c"]).unwrap().as_u64(), Some(3));
        assert!(v.pointer(&["a", "missing"]).is_none());
        assert!(v.pointer(&["x", "b"]).is_none());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = JsonValue::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(JsonValue::parse("\"\\ud83d\"").is_err());
    }
}
