//! The structured trace journal: typed events in per-shard ring
//! buffers, merged and exported after a run.
//!
//! Two rules keep the hot path cheap and honest:
//!
//! * **Lock-free by ownership.** Each shard thread exclusively owns its
//!   [`TraceBuffer`]; recording is a plain method call on owned memory —
//!   no atomics, no locks, no allocation after construction. The buffers
//!   meet only after the threads join, when [`TraceJournal::from_buffers`]
//!   merges them into one time-ordered journal.
//! * **Totals survive overwrite.** The ring overwrites its oldest events
//!   when full (a long run must not grow without bound), but per-kind
//!   totals are kept outside the ring, so rare events — an accusation
//!   raised once in a million packets — stay countable exactly even when
//!   their payload was pushed out by chatter. [`TraceBuffer::dropped`]
//!   says how many events were overwritten.
//!
//! Exports: [`TraceJournal::to_jsonl`] (one JSON object per line, exact
//! round trip via [`TraceJournal::from_jsonl`]) and
//! [`TraceJournal::to_chrome_trace`] (the `chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev) trace-event format, with rounds as
//! duration slices and everything else as instant events).

use crate::json::{self, JsonError, JsonValue};

/// Placeholder router id for events not tied to a router.
pub const NO_ROUTER: u32 = u32::MAX;
/// Placeholder round number for events not tied to a round.
pub const NO_ROUND: u64 = u64::MAX;

macro_rules! trace_kinds {
    ($($variant:ident => $name:literal,)+) => {
        /// What happened. The set mirrors the decisions Chapter 7 audits:
        /// traffic observed, rounds delimited, summaries exchanged or
        /// reconciled, accusations raised, and the delivery machinery
        /// (timers, retransmits) underneath them.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(u8)]
        pub enum TraceKind {
            $(
                #[doc = concat!("Serialized as `\"", $name, "\"`.")]
                $variant,
            )+
        }

        impl TraceKind {
            /// Every kind, in declaration order.
            pub const ALL: &'static [TraceKind] = &[$(TraceKind::$variant,)+];

            /// The snake_case wire name used in JSONL and chrome-trace
            /// exports.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(TraceKind::$variant => $name,)+
                }
            }

            /// Inverse of [`TraceKind::as_str`].
            pub fn parse(s: &str) -> Option<TraceKind> {
                match s {
                    $($name => Some(TraceKind::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

trace_kinds! {
    PacketTap => "packet_tap",
    RoundStart => "round_start",
    RoundEnd => "round_end",
    SummarySent => "summary_sent",
    DigestSent => "digest_sent",
    DigestResolved => "digest_resolved",
    DigestFallback => "digest_fallback",
    SummaryTimeout => "summary_timeout",
    AccusationRaised => "accusation_raised",
    AlertSent => "alert_sent",
    TimerFired => "timer_fired",
    Retransmit => "retransmit",
    DeliveryExhausted => "delivery_exhausted",
    LinkStateApplied => "link_state_applied",
    EpochTransition => "epoch_transition",
    ChurnEvent => "churn_event",
    ProbationCleared => "probation_cleared",
}

const KINDS: usize = TraceKind::ALL.len();

/// One recorded event.
///
/// Fields are plain integers (not domain types) so every crate can
/// record into a buffer without `fatih-obs` depending on any of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Per-shard sequence number, assigned at record time; together with
    /// `shard` it uniquely identifies the event.
    pub seq: u64,
    /// Monotonic timestamp in nanoseconds since the run's epoch.
    pub t_ns: u64,
    /// Shard that recorded the event.
    pub shard: u32,
    /// Router the event concerns, or [`NO_ROUTER`].
    pub router: u32,
    /// Protocol round, or [`NO_ROUND`].
    pub round: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Kind-specific payload (batch size, byte count, accused router id,
    /// …); 0 when unused.
    pub value: u64,
}

/// A bounded, overwrite-oldest ring of [`TraceEvent`]s owned by one
/// shard thread.
///
/// ```
/// use fatih_obs::{TraceBuffer, TraceKind};
/// let mut buf = TraceBuffer::new(0, 2);
/// buf.record(1, TraceKind::PacketTap, 7, 0, 1);
/// buf.record(2, TraceKind::PacketTap, 7, 0, 1);
/// buf.record(3, TraceKind::AccusationRaised, 7, 0, 9);
/// // Capacity 2: the first tap was overwritten, but totals survive.
/// assert_eq!(buf.len(), 2);
/// assert_eq!(buf.dropped(), 1);
/// assert_eq!(buf.recorded(TraceKind::PacketTap), 2);
/// assert_eq!(buf.recorded(TraceKind::AccusationRaised), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    shard: u32,
    capacity: usize,
    next_seq: u64,
    ring: std::collections::VecDeque<TraceEvent>,
    dropped: u64,
    recorded: [u64; KINDS],
}

impl TraceBuffer {
    /// An empty buffer for `shard` holding at most `capacity` events
    /// (at least 1).
    pub fn new(shard: u32, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            shard,
            capacity,
            next_seq: 0,
            ring: std::collections::VecDeque::with_capacity(capacity),
            dropped: 0,
            recorded: [0; KINDS],
        }
    }

    /// Records one event, overwriting the oldest if the ring is full.
    #[inline]
    pub fn record(&mut self, t_ns: u64, kind: TraceKind, router: u32, round: u64, value: u64) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceEvent {
            seq: self.next_seq,
            t_ns,
            shard: self.shard,
            router,
            round,
            kind,
            value,
        });
        self.next_seq += 1;
        self.recorded[kind as usize] += 1;
    }

    /// Shard this buffer belongs to.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded (or everything overwritten —
    /// impossible, the ring keeps the newest).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events of `kind` ever recorded, *including* overwritten
    /// ones.
    pub fn recorded(&self, kind: TraceKind) -> u64 {
        self.recorded[kind as usize]
    }
}

/// The merged, time-ordered journal of a whole run.
///
/// Built from the per-shard buffers after their threads join; events are
/// ordered by `(t_ns, shard, seq)` so interleavings read causally per
/// shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceJournal {
    events: Vec<TraceEvent>,
    dropped: u64,
    recorded: [u64; KINDS],
}

impl TraceJournal {
    /// Merges shard buffers into one journal.
    pub fn from_buffers<I: IntoIterator<Item = TraceBuffer>>(buffers: I) -> Self {
        let mut events = Vec::new();
        let mut dropped = 0;
        let mut recorded = [0u64; KINDS];
        for buf in buffers {
            dropped += buf.dropped;
            for (i, n) in buf.recorded.iter().enumerate() {
                recorded[i] += n;
            }
            events.extend(buf.ring);
        }
        events.sort_by_key(|e| (e.t_ns, e.shard, e.seq));
        Self {
            events,
            dropped,
            recorded,
        }
    }

    /// All retained events, time-ordered.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten across all source buffers (0 means
    /// [`TraceJournal::events`] is complete).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events of `kind` ever recorded across all source buffers,
    /// including overwritten ones — compare this against a metrics
    /// counter when auditing.
    pub fn recorded(&self, kind: TraceKind) -> u64 {
        self.recorded[kind as usize]
    }

    /// Serializes the journal as JSONL: one JSON object per event per
    /// line. [`TraceJournal::from_jsonl`] parses it back to an equal
    /// event list.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for e in &self.events {
            out.push_str(&format!(
                "{{\"seq\": {}, \"t_ns\": {}, \"shard\": {}, \"router\": {}, \
                 \"round\": {}, \"kind\": ",
                e.seq, e.t_ns, e.shard, e.router, e.round
            ));
            json::write_string(&mut out, e.kind.as_str());
            out.push_str(&format!(", \"value\": {}}}\n", e.value));
        }
        out
    }

    /// Parses a journal back from its JSONL form. Per-kind totals are
    /// recomputed from the retained events (overwrite counts are not part
    /// of the wire form, so `dropped` reads 0).
    pub fn from_jsonl(s: &str) -> Result<TraceJournal, JsonError> {
        let mut events = Vec::new();
        let mut recorded = [0u64; KINDS];
        for line in s.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let v = JsonValue::parse(line)?;
            let field = |name: &'static str| -> Result<u64, JsonError> {
                v.get(name).and_then(JsonValue::as_u64).ok_or(JsonError {
                    at: 0,
                    msg: "missing or non-integer event field",
                })
            };
            let kind = v
                .get("kind")
                .and_then(JsonValue::as_str)
                .and_then(TraceKind::parse)
                .ok_or(JsonError {
                    at: 0,
                    msg: "missing or unknown event kind",
                })?;
            recorded[kind as usize] += 1;
            events.push(TraceEvent {
                seq: field("seq")?,
                t_ns: field("t_ns")?,
                shard: field("shard")? as u32,
                router: field("router")? as u32,
                round: field("round")?,
                kind,
                value: field("value")?,
            });
        }
        events.sort_by_key(|e| (e.t_ns, e.shard, e.seq));
        Ok(TraceJournal {
            events,
            dropped: 0,
            recorded,
        })
    }

    /// Serializes the journal in the `chrome://tracing` trace-event
    /// format: load the output in `chrome://tracing` or
    /// [Perfetto](https://ui.perfetto.dev) to see each shard as a
    /// process row, each router as a thread row, rounds as duration
    /// slices (`round_start`/`round_end` become `B`/`E` pairs) and all
    /// other events as instants. Timestamps are microseconds as the
    /// format requires; sub-microsecond ordering is preserved by the
    /// fractional part.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 128 + 64);
        out.push_str("{\"traceEvents\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // B/E pairs must share a name for the viewer to pair them
            // into one slice, so both round delimiters are named "round".
            let (ph, name) = match e.kind {
                TraceKind::RoundStart => ("B", "round"),
                TraceKind::RoundEnd => ("E", "round"),
                k => ("i", k.as_str()),
            };
            let ts = e.t_ns as f64 / 1_000.0;
            out.push_str("\n  {\"name\": ");
            json::write_string(&mut out, name);
            out.push_str(&format!(
                ", \"ph\": \"{ph}\", \"ts\": {}, \"pid\": {}, \"tid\": {}",
                json::fmt_f64(ts),
                e.shard,
                e.router
            ));
            if ph == "i" {
                out.push_str(", \"s\": \"t\"");
            }
            out.push_str(&format!(
                ", \"args\": {{\"seq\": {}, \"round\": {}, \"value\": {}}}}}",
                e.seq, e.round, e.value
            ));
        }
        out.push_str("\n]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_journal() -> TraceJournal {
        let mut a = TraceBuffer::new(0, 64);
        let mut b = TraceBuffer::new(1, 64);
        a.record(100, TraceKind::RoundStart, NO_ROUTER, 0, 0);
        b.record(150, TraceKind::PacketTap, 4, 0, 32);
        a.record(150, TraceKind::TimerFired, 2, 0, 0);
        b.record(200, TraceKind::AccusationRaised, 4, 0, 5);
        a.record(300, TraceKind::RoundEnd, NO_ROUTER, 0, 0);
        TraceJournal::from_buffers([a, b])
    }

    #[test]
    fn merge_orders_by_time_then_shard() {
        let j = sample_journal();
        let order: Vec<(u64, u32)> = j.events().iter().map(|e| (e.t_ns, e.shard)).collect();
        assert_eq!(
            order,
            vec![(100, 0), (150, 0), (150, 1), (200, 1), (300, 0)]
        );
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let j = sample_journal();
        let back = TraceJournal::from_jsonl(&j.to_jsonl()).unwrap();
        assert_eq!(back.events(), j.events());
        for &k in TraceKind::ALL {
            assert_eq!(back.recorded(k), j.recorded(k), "kind {k:?}");
        }
    }

    #[test]
    fn overwrite_keeps_totals_and_counts_drops() {
        let mut buf = TraceBuffer::new(0, 4);
        for i in 0..100 {
            buf.record(i, TraceKind::PacketTap, 1, 0, 0);
        }
        buf.record(100, TraceKind::AccusationRaised, 1, 0, 0);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.dropped(), 97);
        assert_eq!(buf.recorded(TraceKind::PacketTap), 100);
        assert_eq!(buf.recorded(TraceKind::AccusationRaised), 1);
        let j = TraceJournal::from_buffers([buf]);
        assert_eq!(j.dropped(), 97);
        assert_eq!(j.recorded(TraceKind::PacketTap), 100);
        // The newest events are the retained ones.
        assert_eq!(j.events().last().unwrap().kind, TraceKind::AccusationRaised);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_round_slices() {
        let j = sample_journal();
        let v = JsonValue::parse(&j.to_chrome_trace()).expect("valid json");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), j.len());
        let phs: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phs.iter().filter(|p| **p == "B").count(), 1);
        assert_eq!(phs.iter().filter(|p| **p == "E").count(), 1);
        assert!(phs.iter().filter(|p| **p == "i").count() >= 3);
        // ts is µs: the 150ns event reads back as 0.15.
        let ts = events[1].get("ts").unwrap().as_f64().unwrap();
        assert!((ts - 0.15).abs() < 1e-9, "ts {ts}");
    }

    #[test]
    fn kind_names_round_trip() {
        for &k in TraceKind::ALL {
            assert_eq!(TraceKind::parse(k.as_str()), Some(k), "{k:?}");
        }
        assert_eq!(TraceKind::parse("not_a_kind"), None);
    }

    #[test]
    fn from_jsonl_rejects_bad_lines() {
        assert!(TraceJournal::from_jsonl("{\"seq\": 1}").is_err());
        assert!(TraceJournal::from_jsonl("not json").is_err());
        let ok = TraceJournal::from_jsonl("\n\n").unwrap();
        assert!(ok.is_empty());
    }
}
