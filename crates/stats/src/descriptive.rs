//! Batch and online descriptive statistics.
//!
//! The evaluation chapters report max/average/median series (Figures 5.2 and
//! 5.4) and Protocol χ needs a running mean/standard deviation of the
//! queue-prediction error learned over a calibration period (§6.2.1). Batch
//! summaries are computed by [`Summary`]; streaming moments by
//! [`OnlineStats`] (Welford's algorithm, numerically stable).

/// Batch summary of a sample: count, mean, standard deviation, min, max,
/// median and arbitrary percentiles.
///
/// # Examples
///
/// ```
/// use fatih_stats::Summary;
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.len(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.median() - 2.5).abs() < 1e-12);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    m2: f64,
}

impl Summary {
    /// Builds a summary from any iterator of values.
    ///
    /// Non-finite values are rejected with a panic because every statistic
    /// downstream would silently become meaningless.
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN or infinite.
    // Inherent convenience alias; the real implementation lives in the
    // `FromIterator` impl below.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(values: I) -> Self {
        values.into_iter().collect()
    }

    /// Builds a summary from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Self::from_iter(values.iter().copied())
    }
}

impl FromIterator<f64> for Summary {
    /// Collects values into a summary.
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN or infinite (see [`Summary::from_iter`]).
    fn from_iter<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut sorted: Vec<f64> = values.into_iter().collect();
        assert!(
            sorted.iter().all(|v| v.is_finite()),
            "Summary requires finite values"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for (i, &x) in sorted.iter().enumerate() {
            let delta = x - mean;
            mean += delta / (i + 1) as f64;
            m2 += delta * (x - mean);
        }
        Self { sorted, mean, m2 }
    }
}

impl Summary {
    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean. Zero for an empty sample.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`n − 1` denominator). Zero when `n < 2`.
    pub fn variance(&self) -> f64 {
        if self.sorted.len() < 2 {
            0.0
        } else {
            self.m2 / (self.sorted.len() - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum. Zero for an empty sample.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Maximum. Zero for an empty sample.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Median (linear interpolation between the middle pair for even `n`).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Percentile in `[0, 100]` with linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.sorted.is_empty() {
            return 0.0;
        }
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }
}

/// Streaming mean / variance via Welford's algorithm.
///
/// Protocol χ uses this during its *learning period* to estimate the mean
/// `µ` and standard deviation `σ` of the queue-prediction error
/// `X = q_act − q_pred` (dissertation §6.2.1).
///
/// # Examples
///
/// ```
/// use fatih_stats::OnlineStats;
/// let mut o = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     o.push(x);
/// }
/// assert!((o.mean() - 5.0).abs() < 1e-12);
/// assert!((o.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether no observations were added yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Running mean. Zero when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance. Zero when `n < 2`.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Population variance (`n` denominator). Zero when empty.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.len(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.median() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn summary_handles_empty_and_singleton() {
        let e = Summary::from_slice(&[]);
        assert!(e.is_empty());
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.median(), 0.0);
        let s = Summary::from_slice(&[42.0]);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.percentile(99.0), 42.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::from_slice(&[0.0, 10.0]);
        assert!((s.percentile(25.0) - 2.5).abs() < 1e-12);
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(100.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "finite values")]
    fn summary_rejects_nan() {
        let _ = Summary::from_slice(&[1.0, f64::NAN]);
    }

    #[test]
    fn online_matches_batch() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let batch = Summary::from_slice(&data);
        let mut online = OnlineStats::new();
        for &x in &data {
            online.push(x);
        }
        assert!((online.mean() - batch.mean()).abs() < 1e-9);
        assert!((online.variance() - batch.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let a: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let b: Vec<f64> = (0..700).map(|i| (i as f64).cos() * 3.0 + 5.0).collect();
        let mut all = OnlineStats::new();
        for x in a.iter().chain(b.iter()) {
            all.push(*x);
        }
        let mut left = OnlineStats::new();
        for &x in &a {
            left.push(x);
        }
        let mut right = OnlineStats::new();
        for &x in &b {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.len(), all.len());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
