//! Standard-normal distribution functions.
//!
//! Protocol χ models the queue-prediction error `q_act − q_pred` as a normal
//! random variable whose mean and standard deviation are measured during a
//! learning period (dissertation §6.2.1). Both its statistical tests reduce
//! to evaluating the standard-normal CDF.

use crate::erf_impl::{erf, erfc};

const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// Cumulative distribution function `Φ(x) = P(Z ≤ x)` of `Z ~ N(0, 1)`.
///
/// # Examples
///
/// ```
/// use fatih_stats::normal;
/// assert!((normal::cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!(normal::cdf(3.0) > 0.998);
/// ```
pub fn cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Survival function `P(Z > x) = 1 − Φ(x)`, stable in the upper tail.
///
/// # Examples
///
/// ```
/// use fatih_stats::normal;
/// // A 6-sigma event really is around 1e-9, not rounded to zero:
/// let p = normal::sf(6.0);
/// assert!(p > 0.9e-9 && p < 1.1e-9);
/// ```
pub fn sf(x: f64) -> f64 {
    0.5 * erfc(x / SQRT_2)
}

/// Probability density function `φ(x)`.
///
/// # Examples
///
/// ```
/// use fatih_stats::normal;
/// assert!((normal::pdf(0.0) - 0.3989422804014327).abs() < 1e-12);
/// ```
pub fn pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Quantile function `Φ⁻¹(p)` (inverse CDF).
///
/// Uses Peter Acklam's rational approximation refined with one Halley step,
/// giving full double precision over `(0, 1)`.
///
/// # Panics
///
/// Panics if `p` is not within `(0, 1)` (exclusive); the endpoints map to
/// ±∞, which callers in this crate never want.
///
/// # Examples
///
/// ```
/// use fatih_stats::normal;
/// let z = normal::quantile(0.975);
/// assert!((z - 1.959963984540054).abs() < 1e-9);
/// // Round-trips with the CDF:
/// assert!((normal::cdf(normal::quantile(0.3)) - 0.3).abs() < 1e-12);
/// ```
pub fn quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal::quantile requires p in (0,1), got {p}"
    );

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step: e = cdf(x) - p; u = e/pdf(x).
    let e = cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// CDF of a general normal `N(mu, sigma²)`.
///
/// # Examples
///
/// ```
/// use fatih_stats::normal;
/// let p = normal::cdf_general(54.0, 50.0, 2.0);
/// assert!((p - normal::cdf(2.0)).abs() < 1e-14);
/// ```
pub fn cdf_general(x: f64, mu: f64, sigma: f64) -> f64 {
    cdf((x - mu) / sigma)
}

/// Confidence value `(1 + erf(y/√2)) / 2` used verbatim by the dissertation's
/// Figure 6.2 (the single-packet-loss test); equal to [`cdf`]`(y)`.
///
/// # Examples
///
/// ```
/// use fatih_stats::normal;
/// assert!((normal::erf_confidence(0.0) - 0.5).abs() < 1e-15);
/// ```
pub fn erf_confidence(y: f64) -> f64 {
    0.5 * (1.0 + erf(y / SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_reference_values() {
        let refs = [
            (-3.0, 1.349898031630095e-3),
            (-1.0, 0.1586552539314571),
            (0.0, 0.5),
            (1.0, 0.8413447460685429),
            (1.6448536269514722, 0.95),
            (3.0, 0.9986501019683699),
        ];
        for (x, want) in refs {
            assert!((cdf(x) - want).abs() < 1e-12, "cdf({x})");
        }
    }

    #[test]
    fn sf_is_one_minus_cdf() {
        for x in [-4.0, -1.5, 0.0, 0.5, 2.2, 3.8] {
            assert!((sf(x) + cdf(x) - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn quantile_round_trip() {
        for i in 1..200 {
            let p = i as f64 / 200.0;
            let x = quantile(p);
            assert!((cdf(x) - p).abs() < 1e-11, "round trip at p={p}");
        }
    }

    #[test]
    fn quantile_deep_tails() {
        for p in [1e-10, 1e-6, 1e-3, 1.0 - 1e-3, 1.0 - 1e-6] {
            let x = quantile(p);
            assert!((cdf(x) - p).abs() / p.min(1.0 - p) < 1e-6, "tail p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn quantile_rejects_zero() {
        let _ = quantile(0.0);
    }

    #[test]
    fn erf_confidence_equals_cdf() {
        for y in [-2.0, -0.5, 0.0, 0.7, 3.1] {
            assert!((erf_confidence(y) - cdf(y)).abs() < 1e-14);
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Simple trapezoid over [-8, 8].
        let n = 16_000;
        let h = 16.0 / n as f64;
        let mut s = 0.0;
        for i in 0..=n {
            let x = -8.0 + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            s += w * pdf(x);
        }
        assert!((s * h - 1.0).abs() < 1e-9);
    }
}
