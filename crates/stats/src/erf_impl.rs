//! The error function and its complement.
//!
//! `erf` is computed from the all-positive-terms confluent hypergeometric
//! series on the central region (no cancellation, ~1e-15 accurate) and from
//! the Laplace continued fraction of `erfc` in the tails (evaluated with the
//! modified Lentz algorithm). Both pieces are classical, stable evaluation
//! schemes; see Abramowitz & Stegun 7.1.5 / 7.1.14.

const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;
const SQRT_PI_INV: f64 = TWO_OVER_SQRT_PI / 2.0; // 1/sqrt(pi)

/// Series erf(x) = 2x e^{-x²}/√π · Σ_{n≥0} (2x²)^n / (1·3·5···(2n+1)).
///
/// Every term is positive, so there is no catastrophic cancellation; used for
/// |x| ≤ 3 where it converges in < 60 terms.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = 1.0;
    let mut sum = 1.0;
    let mut n = 0u32;
    while term > 1e-18 * sum {
        n += 1;
        term *= 2.0 * x2 / (2.0 * n as f64 + 1.0);
        sum += term;
        if n > 200 {
            break;
        }
    }
    TWO_OVER_SQRT_PI * x * (-x2).exp() * sum
}

/// Laplace continued fraction for erfc, valid for x ≥ 3:
/// erfc(x) = e^{-x²}/√π · 1/(x + 1/2/(x + 2/2/(x + 3/2/(x + …)))).
fn erfc_cf(x: f64) -> f64 {
    // Modified Lentz evaluation of K = 1/(x+ (1/2)/(x+ (2/2)/(x+ ...)))
    const TINY: f64 = 1e-300;
    let mut f = x.max(TINY);
    let mut c = f;
    let mut d = 0.0;
    for k in 1..300 {
        let a = k as f64 / 2.0; // numerator a_k
        let b = x; // denominator b_k
        d = b + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-17 {
            break;
        }
    }
    (-x * x).exp() * SQRT_PI_INV / f
}

/// The error function `erf(x) = 2/sqrt(pi) * ∫₀ˣ e^{-t²} dt`.
///
/// This is the primitive behind Protocol χ's single-packet-loss confidence
/// test (dissertation Figure 6.2): the probability that a packet of size `ps`
/// could have been buffered given a predicted queue length is expressed as
/// `(1 + erf(y/√2)) / 2`.
///
/// # Examples
///
/// ```
/// assert!((fatih_stats::erf(0.0)).abs() < 1e-15);
/// assert!((fatih_stats::erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// assert!((fatih_stats::erf(-1.0) + 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    let v = if ax <= 3.0 {
        erf_series(ax)
    } else {
        1.0 - erfc_cf(ax)
    };
    if x < 0.0 {
        -v
    } else {
        v
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Numerically stable for large positive `x`, where `1.0 - erf(x)` would
/// cancel to zero. Protocol χ uses the upper tail when computing how unlikely
/// an observed drop is for a near-empty queue.
///
/// # Examples
///
/// ```
/// assert!((fatih_stats::erfc(0.0) - 1.0).abs() < 1e-15);
/// // erfc decays fast but stays representable:
/// assert!(fatih_stats::erfc(5.0) > 0.0);
/// assert!(fatih_stats::erfc(5.0) < 1e-10);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 3.0 {
        erfc_cf(x)
    } else if x <= -3.0 {
        2.0 - erfc_cf(-x)
    } else {
        1.0 - erf(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed to 16 significant digits.
    const REFS: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.25, 0.2763263901682369),
        (0.5, 0.5204998778130465),
        (0.8, 0.7421009647076605),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
        (4.0, 0.9999999845827421),
    ];

    /// erfc reference values in the deep tail.
    const TAIL_REFS: &[(f64, f64)] = &[
        (3.0, 2.209049699858544e-5),
        (4.0, 1.541725790028002e-8),
        (5.0, 1.537459794428035e-12),
        (6.0, 2.151973671249892e-17),
    ];

    #[test]
    fn erf_matches_reference_values() {
        for &(x, want) in REFS {
            let got = erf(x);
            assert!((got - want).abs() < 5e-13, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erfc_matches_tail_references() {
        for &(x, want) in TAIL_REFS {
            let got = erfc(x);
            assert!(
                ((got - want) / want).abs() < 1e-10,
                "erfc({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erf_is_odd() {
        for &(x, _) in REFS {
            assert!((erf(-x) + erf(x)).abs() < 1e-15);
        }
    }

    #[test]
    fn erf_is_monotone() {
        let mut prev = -1.0;
        let mut x = -5.0;
        while x <= 5.0 {
            let v = erf(x);
            assert!(v >= prev, "erf not monotone at {x}");
            prev = v;
            x += 0.01;
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [
            -3.5, -3.0, -1.0, -0.3, 0.0, 0.2, 0.7, 1.3, 2.5, 2.9999, 3.0, 3.9,
        ] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "erf+erfc at {x}");
        }
    }

    #[test]
    fn erfc_tail_positive_and_decreasing() {
        let mut prev = erfc(4.0);
        for i in 1..20 {
            let x = 4.0 + i as f64 * 0.5;
            let v = erfc(x);
            assert!(v > 0.0, "erfc({x}) underflowed to {v}");
            assert!(v < prev, "erfc not decreasing at {x}");
            prev = v;
        }
    }

    #[test]
    fn erfc_large_negative_approaches_two() {
        assert!((erfc(-6.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn branch_boundary_is_continuous() {
        // The series/continued-fraction handoff at |x| = 3 must agree.
        let below = erf(3.0 - 1e-9);
        let above = erf(3.0 + 1e-9);
        assert!((below - above).abs() < 1e-10);
    }

    #[test]
    fn nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }
}
