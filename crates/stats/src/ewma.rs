//! Exponentially weighted moving averages.
//!
//! Used in two places in the reproduction: RED's average queue size
//! (dissertation §6.5.1 — RED drops probabilistically based on an EWMA of
//! instantaneous queue length), and rate estimation in the ZHANG-style
//! per-interface baseline (§3.12).

/// An exponentially weighted moving average
/// `avg ← (1 − w)·avg + w·sample`.
///
/// # Examples
///
/// ```
/// use fatih_stats::Ewma;
/// let mut avg = Ewma::new(0.5);
/// avg.update(10.0);
/// avg.update(20.0);
/// // (0.5·10)·0.5 + 0.5·20 ... first sample seeds the average:
/// assert!((avg.value() - 15.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    weight: f64,
    value: f64,
    seeded: bool,
}

impl Ewma {
    /// Creates an average with smoothing weight `w ∈ (0, 1]`.
    ///
    /// RED traditionally uses small weights such as `w = 0.002`; the first
    /// sample seeds the average directly (standard RED initialisation).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < w <= 1`.
    pub fn new(weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight <= 1.0,
            "EWMA weight must be in (0,1], got {weight}"
        );
        Self {
            weight,
            value: 0.0,
            seeded: false,
        }
    }

    /// Feeds one sample, returning the updated average.
    pub fn update(&mut self, sample: f64) -> f64 {
        if self.seeded {
            self.value += self.weight * (sample - self.value);
        } else {
            self.value = sample;
            self.seeded = true;
        }
        self.value
    }

    /// Applies the idle-time decay RED performs when a packet arrives at an
    /// empty queue: the average is aged as if `m` zero-length samples were
    /// seen, i.e. `avg ← avg · (1 − w)^m`.
    pub fn decay(&mut self, m: u32) -> f64 {
        if self.seeded {
            self.value *= (1.0 - self.weight).powi(m as i32);
        }
        self.value
    }

    /// Current average; zero before any sample.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Smoothing weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Whether at least one sample was seen.
    pub fn is_seeded(&self) -> bool {
        self.seeded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.value(), 0.0);
        e.update(42.0);
        assert_eq!(e.value(), 42.0);
        assert!(e.is_seeded());
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.02);
        for _ in 0..2_000 {
            e.update(7.5);
        }
        assert!((e.value() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn tracks_step_change_monotonically() {
        let mut e = Ewma::new(0.25);
        e.update(0.0);
        let mut prev = e.value();
        for _ in 0..50 {
            let v = e.update(100.0);
            assert!(v > prev);
            prev = v;
        }
        assert!(prev < 100.0 + 1e-9);
    }

    #[test]
    fn decay_matches_repeated_zero_updates() {
        let mut a = Ewma::new(0.1);
        let mut b = Ewma::new(0.1);
        a.update(50.0);
        b.update(50.0);
        a.decay(5);
        for _ in 0..5 {
            let v = b.value();
            b.update(0.0);
            // update toward zero == multiply by (1-w)
            assert!((b.value() - v * 0.9).abs() < 1e-12);
        }
        assert!((a.value() - b.value()).abs() < 1e-12);
    }

    #[test]
    fn decay_before_seed_is_noop() {
        let mut e = Ewma::new(0.5);
        e.decay(10);
        assert_eq!(e.value(), 0.0);
        assert!(!e.is_seeded());
    }

    #[test]
    #[should_panic(expected = "EWMA weight")]
    fn rejects_zero_weight() {
        let _ = Ewma::new(0.0);
    }
}
