//! One-sample Z-tests.
//!
//! Protocol χ's *combined packet losses* test (dissertation §6.2.1) asks, for
//! the set of `n` packets dropped in a round, whether their mean predicted
//! queue headroom is consistent with congestion. The dissertation's score is
//!
//! ```text
//! z1 = (q_limit − mean(q_pred) − mean(ps) − µ) / (σ / √n)
//! ```
//!
//! and the confidence for "the losses were malicious" is `P(Z < z1)`.
//! This module provides that score plus the generic building blocks.

use crate::normal;

/// Outcome of a one-sample Z-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZTest {
    /// The standardized test statistic.
    pub z: f64,
    /// `P(Z < z)` under the standard normal null distribution.
    pub p_less: f64,
}

impl ZTest {
    /// Tests a sample mean against a hypothesized population mean `mu0`,
    /// given the population standard deviation `sigma` and sample size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0` or `n == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use fatih_stats::ztest::ZTest;
    /// let t = ZTest::one_sample(5.2, 5.0, 1.0, 25);
    /// assert!((t.z - 1.0).abs() < 1e-12);
    /// ```
    pub fn one_sample(sample_mean: f64, mu0: f64, sigma: f64, n: u64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        assert!(n > 0, "sample size must be positive");
        let z = (sample_mean - mu0) / (sigma / (n as f64).sqrt());
        Self {
            z,
            p_less: normal::cdf(z),
        }
    }

    /// Upper-tail p-value `P(Z > z)`.
    pub fn p_greater(&self) -> f64 {
        normal::sf(self.z)
    }

    /// Two-sided p-value `P(|Z| > |z|)`.
    pub fn p_two_sided(&self) -> f64 {
        2.0 * normal::sf(self.z.abs())
    }
}

/// The dissertation's combined-losses confidence `c_combined` (§6.2.1).
///
/// * `q_limit` — output buffer limit in bytes;
/// * `mean_q_pred` — mean predicted queue length at the drop times;
/// * `mean_ps` — mean size of the dropped packets;
/// * `mu`, `sigma` — learned moments of the prediction error
///   `X = q_act − q_pred`;
/// * `n` — number of dropped packets in the round.
///
/// Returns the confidence that the drops were **malicious**: the probability,
/// under the congestion hypothesis, of seeing the queue this far below its
/// limit at the drop times. Values near 1 mean "the queue had plenty of
/// room — congestion cannot explain these losses".
///
/// # Panics
///
/// Panics if `sigma <= 0` or `n == 0`.
///
/// # Examples
///
/// ```
/// use fatih_stats::ztest::combined_loss_confidence;
/// // 10 drops while the predicted queue was near-empty in a 64 kB buffer:
/// let c = combined_loss_confidence(64_000.0, 1_000.0, 500.0, 0.0, 800.0, 10);
/// assert!(c > 0.999);
/// // 10 drops while the predicted queue hugged the limit: plausibly congestion.
/// let c = combined_loss_confidence(64_000.0, 63_600.0, 500.0, 0.0, 800.0, 10);
/// assert!(c < 0.6);
/// ```
pub fn combined_loss_confidence(
    q_limit: f64,
    mean_q_pred: f64,
    mean_ps: f64,
    mu: f64,
    sigma: f64,
    n: u64,
) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
    assert!(n > 0, "need at least one dropped packet");
    let z1 = (q_limit - mean_q_pred - mean_ps - mu) / (sigma / (n as f64).sqrt());
    normal::cdf(z1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_statistic_matches_hand_computation() {
        // mean 103, mu0 100, sigma 12, n 36 -> z = 3/(12/6) = 1.5
        let t = ZTest::one_sample(103.0, 100.0, 12.0, 36);
        assert!((t.z - 1.5).abs() < 1e-12);
        assert!((t.p_less - normal::cdf(1.5)).abs() < 1e-15);
    }

    #[test]
    fn tails_sum_to_one() {
        let t = ZTest::one_sample(1.0, 0.0, 2.0, 9);
        assert!((t.p_less + t.p_greater() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_sided_doubles_the_tail() {
        let t = ZTest::one_sample(-1.0, 0.0, 1.0, 4);
        assert!((t.p_two_sided() - 2.0 * normal::sf(2.0)).abs() < 1e-12);
    }

    #[test]
    fn more_drops_sharpen_the_verdict() {
        // Same per-drop evidence; confidence must grow with n.
        let c1 = combined_loss_confidence(10_000.0, 5_000.0, 500.0, 0.0, 2_000.0, 1);
        let c9 = combined_loss_confidence(10_000.0, 5_000.0, 500.0, 0.0, 2_000.0, 9);
        assert!(c9 > c1);
    }

    #[test]
    fn full_queue_drops_look_benign() {
        let c = combined_loss_confidence(10_000.0, 9_800.0, 500.0, 0.0, 800.0, 5);
        assert!(
            c < 0.5,
            "drops at a full queue must not look malicious, c={c}"
        );
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn rejects_nonpositive_sigma() {
        let _ = combined_loss_confidence(1.0, 0.0, 0.0, 0.0, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_drops() {
        let _ = combined_loss_confidence(1.0, 0.0, 0.0, 0.0, 1.0, 0);
    }
}
