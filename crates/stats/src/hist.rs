//! Fixed-bin histograms and normality diagnostics.
//!
//! The Figure 6.3 experiment shows that the queue-prediction error
//! `q_error = q_act − q_pred` is approximately normal; the figure
//! regenerator uses [`Histogram`] to print the empirical distribution and
//! [`Histogram::jarque_bera`]-style moments to quantify how normal it is.

use crate::descriptive::OnlineStats;

/// A histogram with uniform bins over `[lo, hi)` plus underflow/overflow
/// counters, tracking exact moments of all pushed samples on the side.
///
/// # Examples
///
/// ```
/// use fatih_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [0.5, 1.5, 1.7, 9.9, -3.0, 11.0] {
///     h.push(x);
/// }
/// assert_eq!(h.count(0), 3); // [0,2) holds 0.5, 1.5, 1.7
/// assert_eq!(h.count(4), 1); // [8,10)
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    moments: OnlineStats,
    m3: f64,
    m4: f64,
    raw: Vec<f64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range empty: [{lo}, {hi})");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            moments: OnlineStats::new(),
            m3: 0.0,
            m4: 0.0,
            raw: Vec::new(),
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.moments.push(x);
        self.raw.push(x);
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// All bin counts, in order.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// `(lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples pushed (including out-of-range ones).
    pub fn len(&self) -> u64 {
        self.moments.len()
    }

    /// Whether no samples were pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mean of all pushed samples.
    pub fn mean(&self) -> f64 {
        self.moments.mean()
    }

    /// Sample standard deviation of all pushed samples.
    pub fn std_dev(&self) -> f64 {
        self.moments.std_dev()
    }

    /// Sample skewness (third standardized moment); 0 for a symmetric
    /// distribution. Returns 0 when fewer than 3 samples or zero variance.
    pub fn skewness(&self) -> f64 {
        self.standardized_moment(3)
    }

    /// Sample excess kurtosis (fourth standardized moment − 3); 0 for a
    /// normal distribution. Returns 0 when fewer than 4 samples.
    pub fn excess_kurtosis(&self) -> f64 {
        if self.raw.len() < 4 {
            return 0.0;
        }
        self.standardized_moment(4) - 3.0
    }

    fn standardized_moment(&self, k: u32) -> f64 {
        let n = self.raw.len();
        if n < k as usize {
            return 0.0;
        }
        let mean = self.mean();
        let sd = {
            // population sd for moment standardization
            let var: f64 = self.raw.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            var.sqrt()
        };
        if sd == 0.0 {
            return 0.0;
        }
        self.raw
            .iter()
            .map(|x| ((x - mean) / sd).powi(k as i32))
            .sum::<f64>()
            / n as f64
    }

    /// Jarque–Bera statistic `n/6 · (S² + K²/4)`; small values (≲ 6)
    /// indicate consistency with a normal distribution at the 5% level.
    pub fn jarque_bera(&self) -> f64 {
        let n = self.raw.len() as f64;
        let s = self.skewness();
        let k = self.excess_kurtosis();
        n / 6.0 * (s * s + k * k / 4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        // Offset by half a step so no sample sits on a bin boundary, where
        // float rounding could legitimately place it on either side.
        for i in 0..100 {
            h.push((i as f64 + 0.5) / 100.0);
        }
        assert_eq!(h.counts().iter().sum::<u64>(), 100);
        for i in 0..10 {
            assert_eq!(h.count(i), 10, "bin {i}");
        }
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn edges_are_uniform() {
        let h = Histogram::new(-2.0, 2.0, 4);
        assert_eq!(h.bin_edges(0), (-2.0, -1.0));
        assert_eq!(h.bin_edges(3), (1.0, 2.0));
    }

    #[test]
    fn upper_edge_counts_as_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(1.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn symmetric_sample_has_near_zero_skew() {
        let mut h = Histogram::new(-3.0, 3.0, 12);
        for i in -1000i32..=1000 {
            h.push(i as f64 / 400.0);
        }
        assert!(h.skewness().abs() < 1e-9);
    }

    #[test]
    fn uniform_sample_fails_jarque_bera_normality() {
        // Uniform has excess kurtosis −1.2, so JB should be large.
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..2_000 {
            h.push(i as f64 / 2_000.0);
        }
        assert!(h.jarque_bera() > 50.0);
    }

    #[test]
    fn gaussian_like_sample_passes_jarque_bera() {
        // Sum of 12 "uniforms" from a deterministic low-discrepancy stream
        // is close to normal (Irwin–Hall).
        let mut h = Histogram::new(-4.0, 4.0, 32);
        let mut state = 1u64;
        let mut next = || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..4_000 {
            let s: f64 = (0..12).map(|_| next()).sum::<f64>() - 6.0;
            h.push(s);
        }
        assert!(h.jarque_bera() < 12.0, "JB = {}", h.jarque_bera());
    }

    #[test]
    #[should_panic(expected = "range empty")]
    fn rejects_bad_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
