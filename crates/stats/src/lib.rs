//! Statistical substrate for the `fatih` malicious-router detection library.
//!
//! Protocol χ (dissertation Chapter 6) attributes packet losses to either
//! congestion or malice by comparing a router's *actual* queue behaviour with
//! a *predicted* one, and then asking how surprising the observed losses are.
//! That question is answered with classic statistics: the error function for
//! the single-packet-loss confidence test (Figure 6.2), a Z-test for the
//! combined-losses test (§6.2.1), and descriptive statistics everywhere the
//! evaluation reports max/average/median series (Figures 5.2 and 5.4).
//!
//! This crate keeps those tools in one dependency-free place:
//!
//! * [`erf`], [`erfc`] — the error function, accurate to ~1e-15;
//! * [`normal`] — standard-normal CDF, survival function and quantile;
//! * [`ztest`] — one-sample Z-tests as used by Protocol χ;
//! * [`descriptive`] — batch and online (Welford) summaries;
//! * [`ewma`] — exponentially weighted moving averages (RED's average
//!   queue size, traffic-rate estimation);
//! * [`hist`] — fixed-bin histograms plus normality diagnostics for the
//!   Figure 6.3 experiment.
//!
//! # Examples
//!
//! ```
//! use fatih_stats::{erf, normal};
//!
//! // Probability that a standard normal variable is below 1.96:
//! let p = normal::cdf(1.96);
//! assert!((p - 0.975).abs() < 1e-3);
//! // erf and the normal CDF are consistent:
//! assert!((normal::cdf(1.0) - 0.5 * (1.0 + erf(1.0 / 2f64.sqrt()))).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descriptive;
mod erf_impl;
pub mod ewma;
pub mod hist;
pub mod normal;
pub mod ztest;

pub use descriptive::{OnlineStats, Summary};
pub use erf_impl::{erf, erfc};
pub use ewma::Ewma;
pub use hist::Histogram;
