//! The Fatih system on a lossy, flapping control plane (§2.2.1's benign
//! fault class layered under a genuine attack): summaries ride the
//! ack/retransmit transport, scheduled outages are exonerated, and the
//! attacker is still caught once the faults quiesce.
//!
//! ```sh
//! cargo run --release --example faulty_control_plane
//! ```

use fatih::crypto::KeyStore;
use fatih::protocols::fatih_system::{FatihConfig, FatihEvent, FatihSystem};
use fatih::protocols::transport::TransportConfig;
use fatih::sim::{Attack, FaultPlan, Network, SimTime};
use fatih::topology::{builtin, RouterId};

fn main() {
    let topo = builtin::line(6);
    let ids: Vec<RouterId> = (0..6)
        .map(|i| topo.router_by_name(&format!("n{i}")).unwrap())
        .collect();
    let mut ks = KeyStore::with_seed(17);
    for r in topo.routers() {
        ks.register(r.into());
    }

    let mut net = Network::new(topo, 7);
    let plan = FaultPlan::random_transient(7, net.topology(), SimTime::from_secs(10));
    println!(
        "fault plan: {} flap(s), {} crash window(s), quiesced after {:.1}s",
        plan.flaps().len(),
        plan.crashes().len(),
        plan.quiesced_after().as_secs_f64()
    );
    net.set_fault_plan(Some(plan));

    let flow = net.add_cbr_flow(
        ids[0],
        ids[5],
        1000,
        SimTime::from_ms(2),
        SimTime::ZERO,
        None,
    );
    net.set_attacks(ids[3], vec![Attack::drop_flows([flow], 0.35)]);
    println!("n3 compromised — drops 35% of the n0→n5 flow\n");

    let mut system = FatihSystem::new(
        &net,
        ks,
        FatihConfig {
            transport: TransportConfig {
                max_attempts: 10,
                ..TransportConfig::default()
            },
            ..FatihConfig::default()
        },
    );
    system.run(&mut net, SimTime::from_secs(30));

    for ev in system.timeline() {
        match ev {
            FatihEvent::Detection { at, suspicion } => {
                println!("t={:>5.1}s  detection   {suspicion}", at.as_secs_f64());
            }
            FatihEvent::RouteUpdate { at, excluded } => {
                println!(
                    "t={:>5.1}s  route update ({excluded} segments excluded)",
                    at.as_secs_f64()
                );
            }
        }
    }
    println!(
        "\nalerts delivered over the control plane: {}",
        system.alerts_delivered()
    );
    let caught = system
        .excluded_segments()
        .iter()
        .any(|seg| seg.contains(ids[3]));
    let clean = system
        .excluded_segments()
        .iter()
        .all(|seg| seg.contains(ids[3]));
    println!("attacker flagged: {caught} — no correct router accused: {clean}");
}
