//! Protocol χ over a RED queue (§6.5): validating *probabilistic*
//! drops by replaying RED's average-queue state and per-packet drop
//! probabilities from the monitors' traffic information (Figure 6.10).
//!
//! ```sh
//! cargo run --release --example red_validation
//! ```

use fatih::crypto::KeyStore;
use fatih::protocols::chi::{ChiConfig, QueueModel, QueueValidator};
use fatih::sim::{Attack, AttackKind, Network, QueueDiscipline, RedParams, SimTime, VictimFilter};
use fatih::topology::{builtin, LinkParams};

fn main() {
    let red = RedParams {
        min_threshold: 20_000.0,
        max_threshold: 40_000.0,
        max_p: 0.1,
        weight: 0.002,
        mean_packet_size: 1_000.0,
    };
    let bottleneck = LinkParams {
        bandwidth_bps: 8_000_000,
        queue_limit_bytes: 60_000,
        ..LinkParams::default()
    };
    let topo = builtin::fan_in(3, bottleneck);
    let mut ks = KeyStore::with_seed(4);
    for r in topo.routers() {
        ks.register(r.into());
    }
    let r = topo.router_by_name("r").unwrap();
    let rd = topo.router_by_name("rd").unwrap();

    for (label, attacked) in [
        ("RED early drops only", false),
        ("plus an avg-queue-triggered attack", true),
    ] {
        let mut validator = QueueValidator::new(
            &topo,
            &ks,
            r,
            rd,
            QueueModel::Red(red),
            ChiConfig::default(),
        );
        let mut net = Network::new(topo.clone(), 23);
        net.set_queue_discipline(r, rd, QueueDiscipline::Red(red));
        let mut victim = None;
        for i in 0..3 {
            let s = net.topology().router_by_name(&format!("s{i}")).unwrap();
            let f = net.add_cbr_flow(
                s,
                rd,
                1_000,
                SimTime::from_us(1_100),
                SimTime::ZERO,
                Some(SimTime::from_secs(10)),
            );
            if i == 0 {
                victim = Some(f);
            }
        }
        if attacked {
            // §6.5.3-style attack: drop the victim whenever RED's EWMA
            // average is above a mid-band trigger — every individual loss
            // looks like a plausible RED drop.
            net.set_attacks(
                r,
                vec![Attack {
                    victims: VictimFilter::flows([victim.expect("victim")]),
                    kind: AttackKind::DropWhenAvgQueueAbove {
                        avg_bytes: 30_000.0,
                        fraction: 1.0,
                    },
                }],
            );
        }
        let routes = net.routes().clone();
        let end = SimTime::from_secs(12);
        net.run_until(end, |ev| {
            validator.observe(ev, |p| {
                routes
                    .path(p.src, p.dst)
                    .and_then(|path| path.next_after(r))
            })
        });
        let verdict = validator.end_round(end);
        let truth = net.ground_truth();
        println!("{label}:");
        println!(
            "  {} drops observed ({} RED GT, {} malicious GT), combined confidence {:?}, detected: {}",
            verdict.total_drops(),
            truth.congestive_drops,
            truth.malicious_drops,
            verdict.combined_confidence.map(|c| (c * 1000.0).round() / 1000.0),
            if verdict.detected { "YES" } else { "no" }
        );
        assert_eq!(verdict.detected, attacked && truth.malicious_drops > 0);
    }
    println!(
        "\nthe validator replays RED's EWMA exactly (outcomes are known from\n\
         the exit records), so the expected number of early drops is known —\n\
         an attacker shadowing RED's average adds drops the model cannot\n\
         explain (§6.5.2)."
    );
}
