//! Baselines versus the paper's protocols: WATCHERS (conservation of
//! flow, §3.1) misses a packet-*modification* attack entirely — the byte
//! counts balance — while Protocol Π2's conservation-of-content
//! validation catches it with precision 2.
//!
//! ```sh
//! cargo run --release --example watchers_vs_pi
//! ```

use fatih::crypto::KeyStore;
use fatih::protocols::pi2::{Pi2Config, Pi2Detector};
use fatih::protocols::spec::SpecCheck;
use fatih::protocols::watchers::{WatchersConfig, WatchersDetector};
use fatih::sim::{Attack, AttackKind, Network, SimTime, VictimFilter};
use fatih::topology::builtin;
use std::collections::BTreeSet;

fn main() {
    let topo = builtin::line(5);
    let ids: Vec<_> = topo.routers().collect();
    let mut ks = KeyStore::with_seed(12);
    for r in topo.routers() {
        ks.register(r.into());
    }

    let mut net = Network::new(topo, 31);
    let flow = net.add_cbr_flow(
        ids[0],
        ids[4],
        1_000,
        SimTime::from_ms(2),
        SimTime::ZERO,
        None,
    );
    // n2 modifies half the packets in transit: same volume, different
    // content — the man-in-the-middle case of §1.
    net.set_attacks(
        ids[2],
        vec![Attack {
            victims: VictimFilter::flows([flow]),
            kind: AttackKind::Modify { fraction: 0.5 },
        }],
    );

    let mut watchers = WatchersDetector::new(net.topology(), WatchersConfig::default());
    let mut pi2 = Pi2Detector::new(net.routes(), ks, Pi2Config::default());

    let end = SimTime::from_secs(5);
    net.run_until(end, |ev| {
        watchers.observe(ev);
        pi2.observe(ev);
    });
    let w_sus = watchers.end_round(end);
    let p_sus = pi2.end_round(end);

    let faulty: BTreeSet<_> = [ids[2]].into_iter().collect();
    let w_check = SpecCheck::evaluate(&w_sus, &faulty);
    let p_check = SpecCheck::evaluate(&p_sus, &faulty);

    println!(
        "attack: router {} modifies 50% of transit packets\n",
        ids[2]
    );
    println!(
        "WATCHERS (conservation of flow):    {} suspicions — modifier caught: {}",
        w_sus.len(),
        w_check.is_complete()
    );
    println!(
        "Protocol Π2 (conservation of content): {} suspicions — modifier caught: {} (precision {})",
        p_sus.len(),
        p_check.is_complete(),
        p_check.max_precision
    );
    assert!(
        !w_check.is_complete(),
        "flow counters must balance under pure modification"
    );
    assert!(p_check.is_complete() && p_check.is_accurate(2));
    println!(
        "\nconservation of flow counts bytes and the books balance; only a\n\
         content policy (fingerprints) exposes the modification (§2.4.1)."
    );
}
