//! The Fatih system end to end on the Abilene backbone (§5.3): detection
//! integrated with link-state routing and automatic response. A condensed
//! version of the Figure 5.7 experiment.
//!
//! ```sh
//! cargo run --release --example abilene_fatih
//! ```

use fatih::crypto::KeyStore;
use fatih::protocols::fatih_system::{FatihConfig, FatihEvent, FatihSystem};
use fatih::sim::{Attack, AttackKind, Network, SimTime, VictimFilter};
use fatih::topology::builtin;

fn main() {
    let topo = builtin::abilene();
    let mut ks = KeyStore::with_seed(5);
    for r in topo.routers() {
        ks.register(r.into());
    }
    let sun = topo.router_by_name("Sunnyvale").unwrap();
    let ny = topo.router_by_name("NewYork").unwrap();
    let kc = topo.router_by_name("KansasCity").unwrap();

    let mut net = Network::new(topo, 9);
    net.add_cbr_flow(sun, ny, 1_000, SimTime::from_ms(5), SimTime::ZERO, None);
    net.add_cbr_flow(ny, sun, 1_000, SimTime::from_ms(7), SimTime::ZERO, None);
    let ping = net.add_ping_probe(ny, sun, 100, SimTime::from_ms(500), SimTime::ZERO, None);

    let mut system = FatihSystem::new(&net, ks, FatihConfig::default());

    // 20 clean seconds.
    system.run(&mut net, SimTime::from_secs(20));
    println!(
        "t=20s: {} timeline events (expect 0)",
        system.timeline().len()
    );

    // Compromise Kansas City.
    net.set_attacks(
        kc,
        vec![Attack {
            victims: VictimFilter::all(),
            kind: AttackKind::Drop { fraction: 0.2 },
        }],
    );
    println!("t=20s: KansasCity compromised — drops 20% of transit traffic");
    system.run(&mut net, SimTime::from_secs(60));

    for ev in system.timeline() {
        match ev {
            FatihEvent::Detection { at, suspicion } => {
                println!("t={:>5.1}s  detection   {suspicion}", at.as_secs_f64());
            }
            FatihEvent::RouteUpdate { at, excluded } => {
                println!(
                    "t={:>5.1}s  route update ({excluded} segments excluded)",
                    at.as_secs_f64()
                );
            }
        }
    }

    // The RTT tells the rerouting story: ~50 ms on the Kansas City route,
    // ~56 ms via Los Angeles/Houston/Atlanta after the response.
    let rtts = net.ping_rtts(ping);
    let early: Vec<f64> = rtts
        .iter()
        .filter(|(t, _)| t.as_secs_f64() < 20.0)
        .map(|(_, r)| r.as_secs_f64() * 1e3)
        .collect();
    let late: Vec<f64> = rtts
        .iter()
        .filter(|(t, _)| t.as_secs_f64() > 45.0)
        .map(|(_, r)| r.as_secs_f64() * 1e3)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nRTT before: {:.1} ms — after response: {:.1} ms",
        mean(&early),
        mean(&late)
    );
    assert!(
        system
            .excluded_segments()
            .iter()
            .all(|seg| seg.contains(kc)),
        "response must only exclude segments containing the compromised router"
    );
    println!("all excluded segments contain KansasCity ✓");
}
