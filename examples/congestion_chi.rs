//! Protocol χ (Chapter 6): telling malicious losses from congestion.
//!
//! Two back-to-back scenarios on the Fig 6.4 fan-in topology:
//! 1. an honestly congested bottleneck — thousands of real drops, no
//!    detection;
//! 2. the same bottleneck with a compromised router quietly dropping 2%
//!    of one flow — detected, because the replayed queue shows those
//!    packets had room.
//!
//! ```sh
//! cargo run --release --example congestion_chi
//! ```

use fatih::crypto::KeyStore;
use fatih::protocols::chi::{ChiConfig, QueueModel, QueueValidator};
use fatih::sim::{Attack, Network, SimTime};
use fatih::topology::{builtin, LinkParams};

fn scenario(attack_fraction: f64, congested: bool) {
    let bottleneck = LinkParams {
        bandwidth_bps: 8_000_000, // 1 kB/ms
        queue_limit_bytes: 16_000,
        ..LinkParams::default()
    };
    let topo = builtin::fan_in(3, bottleneck);
    let mut ks = KeyStore::with_seed(3);
    for r in topo.routers() {
        ks.register(r.into());
    }
    let r = topo.router_by_name("r").unwrap();
    let rd = topo.router_by_name("rd").unwrap();
    let mut validator = QueueValidator::new(
        &topo,
        &ks,
        r,
        rd,
        QueueModel::DropTail,
        ChiConfig::default(),
    );

    let mut net = Network::new(topo, 17);
    // Offered load: 3 × 1000 B per interval; 1.1 ms ≈ 2.7× capacity
    // (congested), 4 ms ≈ 0.75× (uncongested).
    let interval = if congested { 1_100 } else { 4_000 };
    let mut victim = None;
    for i in 0..3 {
        let s = net.topology().router_by_name(&format!("s{i}")).unwrap();
        let f = net.add_cbr_flow(
            s,
            rd,
            1_000,
            SimTime::from_us(interval),
            SimTime::ZERO,
            Some(SimTime::from_secs(10)),
        );
        if i == 0 {
            victim = Some(f);
        }
    }
    if attack_fraction > 0.0 {
        net.set_attacks(
            r,
            vec![Attack::drop_flows(
                [victim.expect("victim flow")],
                attack_fraction,
            )],
        );
    }

    let routes = net.routes().clone();
    let end = SimTime::from_secs(12);
    net.run_until(end, |ev| {
        validator.observe(ev, |p| {
            routes
                .path(p.src, p.dst)
                .and_then(|path| path.next_after(r))
        })
    });
    let verdict = validator.end_round(end);
    let truth = net.ground_truth();
    println!(
        "  drops: {:>5} observed ({:>5} congestive GT, {:>3} malicious GT) | \
         congestion-consistent: {:>5} | outcome mismatches: {:>3} | detected: {}",
        verdict.total_drops(),
        truth.congestive_drops,
        truth.malicious_drops,
        verdict.congestion_consistent,
        verdict.outcome_mismatches,
        if verdict.detected { "YES" } else { "no" }
    );
    assert_eq!(verdict.detected, truth.malicious_drops > 0);
}

fn main() {
    println!("honest congestion (2.7× offered load, 16 kB buffer):");
    scenario(0.0, true);
    println!("\nsubtle attack on an uncongested queue (2% of one flow):");
    scenario(0.02, false);
    println!("\nsubtle attack *hidden inside* congestion (2% of one flow):");
    scenario(0.02, true);
    println!(
        "\nχ never confuses the two: real congestive drops replay as\n\
         queue-full events, while the attacked packets had room (Chapter 6)."
    );
}
