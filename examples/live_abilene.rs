//! Live Πk+2 over the Abilene backbone — real UDP, real threads, real time.
//!
//! Eleven router processes (one OS thread + one UDP socket each, all on
//! 127.0.0.1) run the Πk+2 end-to-end validation protocol against the
//! wall clock. CBR traffic flows Sunnyvale ↔ New York; the Kansas City
//! PoP is compromised and silently drops 20% of the transit packets it
//! should forward. Within three 300ms rounds every segment covering
//! Kansas City is suspected, and no correct-only segment is accused.
//!
//! Run with: `cargo run --release --example live_abilene`

use fatih::net::runtime::{DropperSpec, FlowSpec, LiveConfig, LiveDeployment, LiveEvent, LiveSpec};
use fatih::net::UdpNet;
use fatih::protocols::spec::SpecCheck;
use fatih::topology::{builtin, RouterId};
use std::collections::BTreeSet;
use std::time::Duration;

fn main() {
    let topo = builtin::abilene();
    let ids: Vec<RouterId> = topo.routers().collect();
    let name = |id: RouterId| topo.name(id).to_string();
    let sunnyvale = topo.router_by_name("Sunnyvale").expect("PoP");
    let newyork = topo.router_by_name("NewYork").expect("PoP");
    let kansascity = topo.router_by_name("KansasCity").expect("PoP");

    let routes = topo.link_state_routes();
    let path = routes
        .path(sunnyvale, newyork)
        .expect("coast-to-coast route");
    println!("route Sunnyvale -> NewYork:");
    println!(
        "  {}",
        path.routers()
            .iter()
            .map(|&r| name(r))
            .collect::<Vec<_>>()
            .join(" -> ")
    );
    assert!(
        path.routers().contains(&kansascity),
        "expected the 25ms route via Kansas City"
    );

    let spec = LiveSpec {
        flows: vec![
            FlowSpec::new(sunnyvale, newyork, 1000, Duration::from_millis(3)),
            FlowSpec::new(newyork, sunnyvale, 1000, Duration::from_millis(3)),
        ],
        droppers: vec![DropperSpec {
            router: kansascity,
            rate: 0.20,
            seed: 1,
            active_from: 0,
        }],
        ..LiveSpec::default()
    };
    // k = 1, τ = 300ms, 3 rounds; detection only — the conviction→reroute
    // response loop is exercised by `fatih-bench --bin churnbench`.
    let cfg = LiveConfig {
        response: false,
        ..LiveConfig::default()
    };

    println!(
        "\nbinding {} UDP sockets on 127.0.0.1, one router thread each...",
        ids.len()
    );
    let transports = UdpNet::bind_group(&ids).expect("bind loopback sockets");
    let outcome = LiveDeployment::run(&topo, &spec, &cfg, transports);

    println!("\ntimeline:");
    for ev in &outcome.events {
        match ev {
            LiveEvent::SuspicionRaised { suspicion, round } => {
                println!(
                    "  round {round}: {} suspects segment <{}>",
                    name(suspicion.raised_by),
                    suspicion
                        .segment
                        .routers()
                        .iter()
                        .map(|&r| name(r))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            LiveEvent::SummaryTimeout { by, round, .. } => {
                println!(
                    "  round {round}: {} timed out waiting for a summary",
                    name(*by)
                );
            }
            LiveEvent::AlertReceived {
                by, origin, sig_ok, ..
            } => {
                println!(
                    "  alert: {} <- {} (signature {})",
                    name(*by),
                    name(*origin),
                    if *sig_ok { "ok" } else { "BAD" }
                );
            }
            _ => {}
        }
    }

    println!("\nstats: {:?}", outcome.stats);
    println!(
        "monitored {} segments, raised {} suspicions",
        outcome.segments.len(),
        outcome.suspicions.len()
    );

    // The paper's two correctness properties, on live traffic.
    let faulty: BTreeSet<RouterId> = [kansascity].into_iter().collect();
    let check = SpecCheck::evaluate(&outcome.suspicions, &faulty);
    assert!(outcome.stats.data_dropped > 0, "the dropper never fired");
    assert!(
        check.is_complete(),
        "Kansas City escaped detection within {} rounds",
        cfg.rounds
    );
    assert!(
        check.is_accurate(cfg.k + 2),
        "a correct router was accused: {:?}",
        check.false_positives
    );
    let earliest = outcome
        .events
        .iter()
        .filter_map(|e| match e {
            LiveEvent::SuspicionRaised { round, .. } => Some(*round),
            _ => None,
        })
        .min()
        .expect("at least one suspicion");
    println!(
        "\nverdict: Kansas City detected in round {} (wall clock ~{}ms), \
         zero false accusations",
        earliest + 1,
        (earliest + 1) * cfg.tau.as_millis() as u64 + cfg.exchange_budget.as_millis() as u64
    );
}
