//! Quickstart: deploy Protocol Πk+2 on a small simulated network, let a
//! compromised router drop packets, and watch the detector pin it down.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fatih::crypto::KeyStore;
use fatih::protocols::pik2::{Pik2Config, Pik2Detector};
use fatih::protocols::spec::SpecCheck;
use fatih::sim::{Attack, Network, SimTime};
use fatih::topology::builtin;
use std::collections::BTreeSet;

fn main() {
    // 1. A five-router line: n0 — n1 — n2 — n3 — n4.
    let topo = builtin::line(5);
    println!(
        "topology: {} routers, {} duplex links",
        topo.router_count(),
        topo.duplex_link_count()
    );

    // 2. The key infrastructure of §2.1.5: every router gets signing and
    //    pairwise keys.
    let mut keystore = KeyStore::with_seed(2024);
    for r in topo.routers() {
        keystore.register(r.into());
    }

    // 3. Simulated network + the Πk+2 failure detector (AdjacentFault(1),
    //    conservation of content).
    let mut net = Network::new(topo, 42);
    let ids: Vec<_> = net.topology().routers().collect();
    let mut detector = Pik2Detector::new(net.routes(), keystore, Pik2Config::default());
    println!("monitored path segments: {}", detector.segment_count());

    // 4. Traffic: a steady flow end to end…
    let flow = net.add_cbr_flow(
        ids[0],
        ids[4],
        1_000,
        SimTime::from_ms(2),
        SimTime::ZERO,
        None,
    );
    // …and a compromised router in the middle dropping 30% of it.
    let evil = ids[2];
    net.set_attacks(evil, vec![Attack::drop_flows([flow], 0.3)]);
    println!("compromised router: {evil} (drops 30% of the flow)\n");

    // 5. Run one 5-second validation round.
    let round_end = SimTime::from_secs(5);
    net.run_until(round_end, |ev| detector.observe(ev));
    let suspicions = detector.end_round(round_end);

    println!("suspicions after one round:");
    for s in &suspicions {
        println!("  {s}");
    }

    // 6. Judge against ground truth: the detector must be complete (the
    //    dropper is inside some suspected segment) and accurate (every
    //    suspected segment contains a faulty router), with precision k+2.
    let faulty: BTreeSet<_> = [evil].into_iter().collect();
    let check = SpecCheck::evaluate(&suspicions, &faulty);
    println!(
        "\ncomplete: {} | accurate(3): {} | precision: {}",
        check.is_complete(),
        check.is_accurate(3),
        check.max_precision
    );
    let truth = net.ground_truth();
    println!(
        "ground truth: {} injected, {} delivered, {} maliciously dropped",
        truth.injected, truth.delivered, truth.malicious_drops
    );
    assert!(check.is_complete() && check.is_accurate(3));
}
