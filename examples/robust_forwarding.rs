//! Perlman's alternative to detection (§3.7): *Byzantine-robust
//! forwarding* — duplicate every packet over f+1 vertex-disjoint paths so
//! at least one copy always dodges the faulty routers. Robustness without
//! ever learning who is compromised, at (f+1)× the traffic.
//!
//! ```sh
//! cargo run --release --example robust_forwarding
//! ```

use fatih::protocols::perlman::RobustForwarding;
use fatih::topology::{builtin, RouterId};
use std::collections::BTreeSet;

fn main() {
    let topo = builtin::abilene();
    let sun = topo.router_by_name("Sunnyvale").unwrap();
    let ny = topo.router_by_name("NewYork").unwrap();

    let plan = RobustForwarding::plan(&topo, sun, ny, 1).expect("Abilene is 2-connected");
    println!("TotalFault(1) plan, Sunnyvale → NewYork:");
    for p in plan.paths() {
        let names: Vec<&str> = p.routers().iter().map(|&r| topo.name(r)).collect();
        println!("  {}", names.join(" → "));
    }

    // Exhaustively compromise each interior router; a copy always gets
    // through.
    let ids: Vec<RouterId> = topo.routers().collect();
    for &evil in &ids {
        if evil == sun || evil == ny {
            continue;
        }
        let faulty: BTreeSet<RouterId> = [evil].into_iter().collect();
        assert!(plan.survives(&faulty));
    }
    println!("\nevery single-router compromise leaves a surviving copy ✓");

    // But the line topology admits no such plan — path diversity is the
    // necessary condition (§2.1.3).
    let line = builtin::line(5);
    let l: Vec<RouterId> = line.routers().collect();
    let err = RobustForwarding::plan(&line, l[0], l[4], 1).unwrap_err();
    println!(
        "on a line: {err} — detection (Chapters 5–6) is what's left when\n\
         you can't afford {}× traffic or the diversity isn't there",
        2
    );
}
