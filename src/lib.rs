//! # fatih — detecting malicious routers
//!
//! A Rust reproduction of the protocol suite behind *"Brief Announcement:
//! Detecting Malicious Routers"* (Mızrak, Marzullo, Savage — PODC 2004) and
//! its full version, the UCSD dissertation *"Detecting Malicious Routers"*
//! (Mızrak, 2007): traffic validation, distributed detection and response
//! for routers that maliciously drop, modify, reorder or delay transit
//! packets.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`stats`] — error function, normal distribution, Z-tests, EWMA;
//! * [`crypto`] — SHA-256, HMAC, universal hashing, packet fingerprints;
//! * [`validation`] — conservation-of-traffic summaries, Bloom filters and
//!   polynomial set reconciliation;
//! * [`topology`] — network graphs, link-state routing, path segments and
//!   the response mechanism;
//! * [`sim`] — a discrete-event packet network simulator with DropTail and
//!   RED queues, TCP, and attack injection;
//! * [`protocols`] — the detectors themselves: Protocol Π2, Protocol Πk+2,
//!   Protocol χ, the WATCHERS and static-threshold baselines, and the Fatih
//!   system orchestration;
//! * [`net`] — a real wire-protocol runtime: binary codec, UDP/loopback
//!   transports, per-router event loops running the protocol against
//!   wall-clock time;
//! * [`obs`] — zero-dependency observability: a metrics registry (atomic
//!   counters, gauges, log-bucketed histograms) and a structured trace
//!   journal with JSONL and chrome://tracing export.
//!
//! # Quick start
//!
//! ```
//! use fatih::topology::{builtin, Topology};
//!
//! // Build the Abilene backbone used in the Fatih evaluation (Fig. 5.6).
//! let topo: Topology = builtin::abilene();
//! assert_eq!(topo.router_count(), 11);
//! let routes = topo.link_state_routes();
//! // Link-state routing computes a single deterministic path per pair.
//! let path = routes.path(topo.router_by_name("Sunnyvale").unwrap(),
//!                        topo.router_by_name("NewYork").unwrap()).unwrap();
//! assert!(path.len() >= 2);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! regenerators of every figure and table in the paper's evaluation.

#![forbid(unsafe_code)]

pub use fatih_core as protocols;
pub use fatih_crypto as crypto;
pub use fatih_net as net;
pub use fatih_obs as obs;
pub use fatih_sim as sim;
pub use fatih_stats as stats;
pub use fatih_topology as topology;
pub use fatih_validation as validation;
