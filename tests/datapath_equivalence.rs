//! The fast path must change nothing but speed.
//!
//! The batched monitor ingest (one invariant encoding per packet, memoized
//! per-segment fingerprints through the 4-lane Mersenne kernel,
//! slot-indexed record storage) is an optimization of the original
//! per-event path, whose fingerprints came one at a time from the scalar
//! Horner loop. This test replays seeded chaos scenarios — droppers and
//! payload modifiers injected mid-path — and checks, against an
//! independent from-scratch reference model that only ever calls
//! `fingerprint_scalar`, that
//!
//! 1. every report is **bit-identical** (same fingerprints, sizes, times,
//!    in the same order), and
//! 2. every `tv_content` verdict over those reports is identical.

use fatih::crypto::{KeyStore, UhashKey};
use fatih::protocols::monitor::{MonitorMode, PathOracle, Report, ReportEntry, SegmentMonitorSet};
use fatih::sim::{Attack, AttackKind, Network, SimTime, TapEvent, VictimFilter};
use fatih::topology::{builtin, PathSegment, RouterId};
use fatih::validation::tv_content;
use std::collections::BTreeMap;

/// Reference recorder: the textbook per-event path, scalar fingerprints,
/// ordered-map storage. Deliberately shares no code with the optimized
/// ingest beyond the public segment/oracle/key types.
struct ReferenceModel {
    segments: Vec<PathSegment>,
    keys: Vec<UhashKey>,
    oracle: PathOracle,
    reports: BTreeMap<(RouterId, usize), Report>,
}

impl ReferenceModel {
    fn new(segments: Vec<PathSegment>, oracle: PathOracle, ks: &KeyStore) -> Self {
        let keys = segments
            .iter()
            .map(|s| ks.segment_uhash_key(s.stable_id()))
            .collect();
        Self {
            segments,
            keys,
            oracle,
            reports: BTreeMap::new(),
        }
    }

    fn observe(&mut self, ev: &TapEvent) {
        let (recorder, edge, packet, time) = match ev {
            TapEvent::Enqueued {
                router,
                next_hop,
                packet,
                time,
                ..
            } => (*router, (*router, *next_hop), packet, *time),
            TapEvent::Arrived {
                router,
                from: Some(from),
                packet,
                time,
            } => (*router, (*from, *router), packet, *time),
            _ => return,
        };
        if packet.kind == fatih::sim::PacketKind::Control {
            return;
        }
        for (i, seg) in self.segments.iter().enumerate() {
            let routers = seg.routers();
            // Forward recording on any consecutive member pair; arrival
            // recording only at the sink from its predecessor.
            let records = match ev {
                TapEvent::Enqueued { .. } => routers.windows(2).any(|w| (w[0], w[1]) == edge),
                _ => edge == (routers[routers.len() - 2], routers[routers.len() - 1]),
            };
            if !records {
                continue;
            }
            let on_route = self
                .oracle
                .path(packet.src, packet.dst)
                .map(|p| p.contains_segment(routers))
                .unwrap_or(false);
            if !on_route {
                continue;
            }
            let fp = self.keys[i].fingerprint_scalar(&packet.invariant_bytes());
            self.reports
                .entry((recorder, i))
                .or_default()
                .entries
                .push(ReportEntry {
                    fingerprint: fp,
                    size: packet.size,
                    time,
                });
        }
    }

    fn report(&self, router: RouterId, i: usize) -> Report {
        self.reports.get(&(router, i)).cloned().unwrap_or_default()
    }
}

#[test]
fn batched_ingest_matches_scalar_reference_under_chaos() {
    for seed in 0u64..5 {
        let topo = builtin::line(6);
        let ids: Vec<RouterId> = topo.routers().collect();
        let mut net = Network::new(topo, seed);
        let seg_full = PathSegment::new(ids.clone());
        let seg_inner = PathSegment::new(ids[1..5].to_vec());
        let segments = vec![seg_full, seg_inner];
        let oracle = PathOracle::from_routes(net.routes());
        let mut ks = KeyStore::with_seed(0xE9 + seed);
        for i in 0..ids.len() as u32 {
            ks.register(i);
        }

        let mut fast = SegmentMonitorSet::new(
            segments.clone(),
            oracle.clone(),
            &ks,
            MonitorMode::AllMembers,
            None,
        );
        let mut reference = ReferenceModel::new(segments.clone(), oracle, &ks);

        let flow = net.add_cbr_flow(
            ids[0],
            ids[5],
            1000,
            SimTime::from_ms(1),
            SimTime::ZERO,
            Some(SimTime::from_ms(100)),
        );
        // Seeded chaos mid-path: n3 drops 30% of the flow and rewrites the
        // payload of another 20% — loss and fabrication in one run.
        net.set_attacks(
            ids[3],
            vec![
                Attack::drop_flows([flow], 0.3),
                Attack {
                    victims: VictimFilter::flows([flow]),
                    kind: AttackKind::Modify { fraction: 0.2 },
                },
            ],
        );

        let mut events: Vec<TapEvent> = Vec::new();
        net.run_until(SimTime::from_secs(1), |ev| {
            reference.observe(ev);
            events.push(*ev);
        });
        // Uneven chunk sizes exercise batch boundaries.
        for chunk in events.chunks(97) {
            fast.observe_batch(chunk);
        }

        for (i, seg) in segments.iter().enumerate() {
            for &r in seg.routers() {
                assert_eq!(
                    fast.report(r, i),
                    reference.report(r, i),
                    "seed {seed}: report of router {r} for segment {i} diverged"
                );
            }
            // Verdicts across every adjacent member pair, both models.
            let routers = seg.routers();
            for w in routers.windows(2) {
                let fast_v = tv_content(
                    &fast.report(w[0], i).to_content(),
                    &fast.report(w[1], i).to_content(),
                );
                let ref_v = tv_content(
                    &reference.report(w[0], i).to_content(),
                    &reference.report(w[1], i).to_content(),
                );
                assert_eq!(
                    (fast_v.lost, fast_v.fabricated),
                    (ref_v.lost, ref_v.fabricated),
                    "seed {seed}: verdict across ({}, {}) diverged",
                    w[0],
                    w[1]
                );
            }
        }
        // The chaos must actually have produced loss: upstream of the
        // attacker vs downstream across the full segment.
        let v = tv_content(
            &fast.report(ids[2], 0).to_content(),
            &fast.report(ids[3], 0).to_content(),
        );
        assert!(v.lost.len() > 10, "seed {seed}: attacker left no trace");
    }
}
