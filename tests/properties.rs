//! Property-based tests on the core invariants, spanning crates.

use fatih::crypto::{Sha256, UhashKey};
use fatih::stats::{erf, normal};
use fatih::topology::{builtin, AvoidingRoutes, PathSegment, RouterId};
use fatih::validation::field::Fe;
use fatih::validation::{reconcile, SetSketch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

proptest! {
    /// Appendix A: reconciliation recovers any difference within capacity.
    #[test]
    fn reconciliation_recovers_arbitrary_differences(
        common in prop::collection::btree_set(1u64..1_000_000, 0..200),
        only_a in prop::collection::btree_set(1_000_001u64..2_000_000, 0..5),
        only_b in prop::collection::btree_set(2_000_001u64..3_000_000, 0..5),
        seed in 0u64..1000,
    ) {
        let a: Vec<Fe> = common.iter().chain(only_a.iter()).map(|&v| Fe::new(v)).collect();
        let b: Vec<Fe> = common.iter().chain(only_b.iter()).map(|&v| Fe::new(v)).collect();
        let sa = SetSketch::from_elements(a, 10);
        let sb = SetSketch::from_elements(b, 10);
        let d = reconcile(&sa, &sb, &mut StdRng::seed_from_u64(seed)).unwrap();
        let want_a: Vec<Fe> = only_a.iter().map(|&v| Fe::new(v)).collect();
        let want_b: Vec<Fe> = only_b.iter().map(|&v| Fe::new(v)).collect();
        prop_assert_eq!(d.only_in_a, want_a);
        prop_assert_eq!(d.only_in_b, want_b);
    }

    /// Over-capacity differences must error, never fabricate an answer.
    #[test]
    fn reconciliation_never_lies_when_over_capacity(
        only_a in prop::collection::btree_set(1u64..1_000_000, 6..20),
        seed in 0u64..100,
    ) {
        let a: Vec<Fe> = only_a.iter().map(|&v| Fe::new(v)).collect();
        let sa = SetSketch::from_elements(a, 4);
        let sb = SetSketch::from_elements(std::iter::empty(), 4);
        let r = reconcile(&sa, &sb, &mut StdRng::seed_from_u64(seed));
        prop_assert!(r.is_err());
    }

    /// SHA-256 incremental hashing equals one-shot at any split.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..300),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    /// The fingerprint is a function of content only and never collides on
    /// distinct short messages in practice.
    #[test]
    fn uhash_deterministic_and_injective_in_practice(
        msgs in prop::collection::btree_set(prop::collection::vec(any::<u8>(), 1..64), 2..50),
        key_seed in 0u64..1000,
    ) {
        let key = UhashKey::from_seed(key_seed);
        let fps: BTreeSet<u64> = msgs.iter().map(|m| key.fingerprint(m).value()).collect();
        prop_assert_eq!(fps.len(), msgs.len(), "fingerprint collision");
        for m in &msgs {
            prop_assert_eq!(key.fingerprint(m), key.fingerprint(m));
        }
    }

    /// erf is odd, bounded, and monotone; normal CDF inverts its quantile.
    #[test]
    fn erf_and_normal_shape(x in -6.0f64..6.0, y in -6.0f64..6.0, p in 0.001f64..0.999) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        prop_assert!(erf(x).abs() <= 1.0);
        if x < y {
            prop_assert!(erf(x) <= erf(y));
            prop_assert!(normal::cdf(x) <= normal::cdf(y));
        }
        prop_assert!((normal::cdf(normal::quantile(p)) - p).abs() < 1e-9);
    }

    /// Link-state routes are subpath-consistent on random connected graphs
    /// (§4.1's predictability requirement).
    #[test]
    fn routing_subpath_consistency(seed in 0u64..50, n in 4usize..16, extra in 0usize..10) {
        let topo = builtin::random_connected(n, extra, seed);
        let routes = topo.link_state_routes();
        for p in routes.all_paths() {
            for (i, &mid) in p.routers().iter().enumerate() {
                let sub = routes.path(mid, p.sink()).unwrap();
                prop_assert_eq!(sub.routers(), &p.routers()[i..]);
            }
        }
    }

    /// Avoidance routing never traverses an excluded segment, and when it
    /// yields no path the plain route genuinely crossed an exclusion.
    #[test]
    fn avoidance_respects_exclusions(seed in 0u64..30, n in 5usize..12) {
        let topo = builtin::random_connected(n, 4, seed);
        let routes = topo.link_state_routes();
        // Exclude the middle 2-segment of the longest path.
        let longest = routes
            .all_paths()
            .max_by_key(fatih::topology::Path::len)
            .unwrap();
        if longest.len() < 3 {
            return Ok(());
        }
        let mid = longest.len() / 2;
        let seg = PathSegment::new(longest.routers()[mid - 1..=mid].to_vec());
        let av = AvoidingRoutes::new(&topo, vec![seg.clone()]);
        let ids: Vec<RouterId> = topo.routers().collect();
        for &s in &ids {
            for &d in &ids {
                if s == d { continue; }
                match av.path(s, d) {
                    Some(p) => prop_assert!(!p.contains_segment(seg.routers())),
                    None => {
                        // Then every plain route s→d must cross the segment.
                        let plain = routes.path(s, d);
                        if let Some(plain) = plain {
                            prop_assert!(plain.contains_segment(seg.routers()));
                        }
                    }
                }
            }
        }
    }

    /// Field arithmetic: (a+b)·c = a·c + b·c and inverses invert.
    #[test]
    fn field_laws(a in 0u64..u64::MAX, b in 0u64..u64::MAX, c in 1u64..u64::MAX) {
        let (a, b, c) = (Fe::new(a), Fe::new(b), Fe::new(c));
        prop_assert_eq!((a + b) * c, a * c + b * c);
        if !c.is_zero() {
            prop_assert_eq!(c * c.inv(), Fe::new(1));
        }
    }
}
