//! Randomized tests on the core invariants, spanning crates.
//!
//! Formerly proptest-based; now plain seeded loops so the workspace builds
//! offline. Each case derives its inputs from a deterministic RNG keyed by
//! the loop index, so failures reproduce exactly.

use fatih::crypto::{Sha256, UhashKey};
use fatih::stats::{erf, normal};
use fatih::topology::{builtin, AvoidingRoutes, PathSegment, RouterId};
use fatih::validation::field::Fe;
use fatih::validation::{reconcile, SetSketch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn random_set(rng: &mut StdRng, range: std::ops::Range<u64>, max_len: usize) -> BTreeSet<u64> {
    let len = rng.gen_range(0..max_len.max(1));
    (0..len).map(|_| rng.gen_range(range.clone())).collect()
}

/// Appendix A: reconciliation recovers any difference within capacity.
#[test]
fn reconciliation_recovers_arbitrary_differences() {
    for case in 0u64..48 {
        let mut rng = StdRng::seed_from_u64(0x2ECC_0000 + case);
        let common = random_set(&mut rng, 1u64..1_000_000, 200);
        let only_a = random_set(&mut rng, 1_000_001u64..2_000_000, 5);
        let only_b = random_set(&mut rng, 2_000_001u64..3_000_000, 5);
        let seed = rng.gen_range(0u64..1000);
        let a: Vec<Fe> = common
            .iter()
            .chain(only_a.iter())
            .map(|&v| Fe::new(v))
            .collect();
        let b: Vec<Fe> = common
            .iter()
            .chain(only_b.iter())
            .map(|&v| Fe::new(v))
            .collect();
        let sa = SetSketch::from_elements(a, 10);
        let sb = SetSketch::from_elements(b, 10);
        let d = reconcile(&sa, &sb, &mut StdRng::seed_from_u64(seed)).unwrap();
        let want_a: Vec<Fe> = only_a.iter().map(|&v| Fe::new(v)).collect();
        let want_b: Vec<Fe> = only_b.iter().map(|&v| Fe::new(v)).collect();
        assert_eq!(d.only_in_a, want_a, "case {case}");
        assert_eq!(d.only_in_b, want_b, "case {case}");
    }
}

/// Over-capacity differences must error, never fabricate an answer.
#[test]
fn reconciliation_never_lies_when_over_capacity() {
    for case in 0u64..32 {
        let mut rng = StdRng::seed_from_u64(0x0C_0000 + case);
        let mut only_a = random_set(&mut rng, 1u64..1_000_000, 20);
        while only_a.len() < 6 {
            only_a.insert(rng.gen_range(1u64..1_000_000));
        }
        let seed = rng.gen_range(0u64..100);
        let a: Vec<Fe> = only_a.iter().map(|&v| Fe::new(v)).collect();
        let sa = SetSketch::from_elements(a, 4);
        let sb = SetSketch::from_elements(std::iter::empty(), 4);
        let r = reconcile(&sa, &sb, &mut StdRng::seed_from_u64(seed));
        assert!(r.is_err(), "case {case}");
    }
}

/// SHA-256 incremental hashing equals one-shot at any split.
#[test]
fn sha256_incremental_equals_oneshot() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0x5AA2_0000 + case);
        let len = rng.gen_range(0usize..300);
        let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let split = ((data.len() as f64) * rng.gen_range(0.0f64..1.0)) as usize;
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), Sha256::digest(&data), "case {case}");
    }
}

/// The fingerprint is a function of content only and never collides on
/// distinct short messages in practice.
#[test]
fn uhash_deterministic_and_injective_in_practice() {
    for case in 0u64..48 {
        let mut rng = StdRng::seed_from_u64(0x04A5_0000 + case);
        let count = rng.gen_range(2usize..50);
        let mut msgs: BTreeSet<Vec<u8>> = BTreeSet::new();
        while msgs.len() < count {
            let len = rng.gen_range(1usize..64);
            msgs.insert((0..len).map(|_| rng.gen()).collect());
        }
        let key_seed = rng.gen_range(0u64..1000);
        let key = UhashKey::from_seed(key_seed);
        let fps: BTreeSet<u64> = msgs.iter().map(|m| key.fingerprint(m).value()).collect();
        assert_eq!(fps.len(), msgs.len(), "case {case}: fingerprint collision");
        for m in &msgs {
            assert_eq!(key.fingerprint(m), key.fingerprint(m), "case {case}");
        }
    }
}

/// erf is odd, bounded, and monotone; normal CDF inverts its quantile.
#[test]
fn erf_and_normal_shape() {
    for case in 0u64..256 {
        let mut rng = StdRng::seed_from_u64(0xE2F_0000 + case);
        let x = rng.gen_range(-6.0f64..6.0);
        let y = rng.gen_range(-6.0f64..6.0);
        let p = rng.gen_range(0.001f64..0.999);
        assert!((erf(x) + erf(-x)).abs() < 1e-12, "case {case}");
        assert!(erf(x).abs() <= 1.0, "case {case}");
        if x < y {
            assert!(erf(x) <= erf(y), "case {case}");
            assert!(normal::cdf(x) <= normal::cdf(y), "case {case}");
        }
        assert!(
            (normal::cdf(normal::quantile(p)) - p).abs() < 1e-9,
            "case {case}"
        );
    }
}

/// Link-state routes are subpath-consistent on random connected graphs
/// (§4.1's predictability requirement).
#[test]
fn routing_subpath_consistency() {
    for case in 0u64..24 {
        let mut rng = StdRng::seed_from_u64(0x2075_0000 + case);
        let seed = rng.gen_range(0u64..50);
        let n = rng.gen_range(4usize..16);
        let extra = rng.gen_range(0usize..10);
        let topo = builtin::random_connected(n, extra, seed);
        let routes = topo.link_state_routes();
        for p in routes.all_paths() {
            for (i, &mid) in p.routers().iter().enumerate() {
                let sub = routes.path(mid, p.sink()).unwrap();
                assert_eq!(sub.routers(), &p.routers()[i..], "case {case}");
            }
        }
    }
}

/// Avoidance routing never traverses an excluded segment, and when it
/// yields no path the plain route genuinely crossed an exclusion.
#[test]
fn avoidance_respects_exclusions() {
    for case in 0u64..24 {
        let mut rng = StdRng::seed_from_u64(0xA0D_0000 + case);
        let seed = rng.gen_range(0u64..30);
        let n = rng.gen_range(5usize..12);
        let topo = builtin::random_connected(n, 4, seed);
        let routes = topo.link_state_routes();
        // Exclude the middle 2-segment of the longest path.
        let longest = routes
            .all_paths()
            .max_by_key(fatih::topology::Path::len)
            .unwrap();
        if longest.len() < 3 {
            continue;
        }
        let mid = longest.len() / 2;
        let seg = PathSegment::new(longest.routers()[mid - 1..=mid].to_vec());
        let av = AvoidingRoutes::new(&topo, vec![seg.clone()]);
        let ids: Vec<RouterId> = topo.routers().collect();
        for &s in &ids {
            for &d in &ids {
                if s == d {
                    continue;
                }
                match av.path(s, d) {
                    Some(p) => {
                        assert!(!p.contains_segment(seg.routers()), "case {case}")
                    }
                    None => {
                        // Then every plain route s→d must cross the segment.
                        if let Some(plain) = routes.path(s, d) {
                            assert!(plain.contains_segment(seg.routers()), "case {case}");
                        }
                    }
                }
            }
        }
    }
}

/// Field arithmetic: (a+b)·c = a·c + b·c and inverses invert.
#[test]
fn field_laws() {
    for case in 0u64..256 {
        let mut rng = StdRng::seed_from_u64(0x000F_1E1D_0000 + case);
        let (a, b, c) = (
            Fe::new(rng.gen::<u64>()),
            Fe::new(rng.gen::<u64>()),
            Fe::new(rng.gen_range(1u64..u64::MAX)),
        );
        assert_eq!((a + b) * c, a * c + b * c, "case {case}");
        if !c.is_zero() {
            assert_eq!(c * c.inv(), Fe::new(1), "case {case}");
        }
    }
}
