//! Integration tests for Protocol χ and the response machinery under
//! richer scenarios than the unit fixtures.

use fatih::crypto::KeyStore;
use fatih::protocols::chi::{ChiConfig, QueueModel, QueueValidator};
use fatih::protocols::fatih_system::{FatihConfig, FatihSystem};
use fatih::protocols::threshold::ThresholdDetector;
use fatih::sim::{Attack, Network, SimTime};
use fatih::topology::{builtin, LinkParams, RouterId};

fn fan(sources: usize, q_limit: u32) -> (Network, KeyStore, RouterId, RouterId) {
    let topo = builtin::fan_in(
        sources,
        LinkParams {
            bandwidth_bps: 8_000_000,
            queue_limit_bytes: q_limit,
            ..LinkParams::default()
        },
    );
    let mut ks = KeyStore::with_seed(7);
    for r in topo.routers() {
        ks.register(r.into());
    }
    let r = topo.router_by_name("r").unwrap();
    let rd = topo.router_by_name("rd").unwrap();
    (Network::new(topo, 7), ks, r, rd)
}

#[test]
fn chi_and_threshold_see_the_same_traffic_but_judge_differently() {
    // Congested, no attack: χ stays quiet; a 1% threshold cries wolf.
    let (mut net, ks, r, rd) = fan(3, 8_000);
    let mut chi = QueueValidator::new(
        net.topology(),
        &ks,
        r,
        rd,
        QueueModel::DropTail,
        ChiConfig::default(),
    );
    let mut th = ThresholdDetector::new(net.topology(), &ks, r, rd, 0.01);
    for i in 0..3 {
        let s = net.topology().router_by_name(&format!("s{i}")).unwrap();
        net.add_cbr_flow(
            s,
            rd,
            1000,
            SimTime::from_us(1_100),
            SimTime::ZERO,
            Some(SimTime::from_secs(8)),
        );
    }
    let routes = net.routes().clone();
    let end = SimTime::from_secs(10);
    net.run_until(end, |ev| {
        let nh = |p: &fatih::sim::Packet| {
            routes
                .path(p.src, p.dst)
                .and_then(|path| path.next_after(r))
        };
        chi.observe(ev, nh);
        th.observe(ev, nh);
    });
    let chi_verdict = chi.end_round(end);
    let th_verdict = th.end_round(end);
    assert!(net.ground_truth().congestive_drops > 100);
    assert!(!chi_verdict.detected, "χ false positive: {chi_verdict:?}");
    assert!(th_verdict.detected, "threshold should false-positive here");
    // Both counted the same loss volume.
    assert_eq!(
        chi_verdict.total_drops(),
        th_verdict.offered - th_verdict.forwarded
    );
}

#[test]
fn chi_survives_many_short_rounds_under_attack_onset() {
    let (mut net, ks, r, rd) = fan(2, 64_000);
    let mut chi = QueueValidator::new(
        net.topology(),
        &ks,
        r,
        rd,
        QueueModel::DropTail,
        ChiConfig::default(),
    );
    let s0 = net.topology().router_by_name("s0").unwrap();
    let s1 = net.topology().router_by_name("s1").unwrap();
    let f0 = net.add_cbr_flow(s0, rd, 1000, SimTime::from_ms(3), SimTime::ZERO, None);
    net.add_cbr_flow(s1, rd, 1000, SimTime::from_ms(4), SimTime::ZERO, None);
    let routes = net.routes().clone();

    let mut first_detection = None;
    for round in 1..=10u64 {
        if round == 5 {
            net.set_attacks(r, vec![Attack::drop_flows([f0], 0.1)]);
        }
        let end = SimTime::from_secs(round * 2);
        net.run_until(end, |ev| {
            chi.observe(ev, |p| {
                routes
                    .path(p.src, p.dst)
                    .and_then(|path| path.next_after(r))
            })
        });
        let v = chi.end_round(end);
        if round < 5 {
            assert!(!v.detected, "round {round} false positive: {v:?}");
        } else if v.detected && first_detection.is_none() {
            first_detection = Some(round);
        }
    }
    assert!(
        matches!(first_detection, Some(5 | 6)),
        "attack onset not caught promptly: {first_detection:?}"
    );
}

#[test]
fn fatih_response_survives_two_compromised_routers() {
    // Two separate attackers on a richer topology: both eventually
    // excluded, traffic still delivered end to end.
    let topo = builtin::grid(3, 3);
    let mut ks = KeyStore::with_seed(2);
    for r in topo.routers() {
        ks.register(r.into());
    }
    let corner_a = topo.router_by_name("g0_0").unwrap();
    let corner_b = topo.router_by_name("g2_2").unwrap();
    // Compromise a transit router actually on the routed path.
    let routes = topo.link_state_routes();
    let path = routes.path(corner_a, corner_b).unwrap();
    let evil1 = path.routers()[path.len() / 2];
    let mut net = Network::new(topo, 13);
    net.add_cbr_flow(
        corner_a,
        corner_b,
        1000,
        SimTime::from_ms(4),
        SimTime::ZERO,
        None,
    );
    net.add_cbr_flow(
        corner_b,
        corner_a,
        1000,
        SimTime::from_ms(5),
        SimTime::ZERO,
        None,
    );
    net.set_attacks(
        evil1,
        vec![Attack {
            victims: fatih::sim::VictimFilter::all(),
            kind: fatih::sim::AttackKind::Drop { fraction: 0.4 },
        }],
    );
    let mut system = FatihSystem::new(&net, ks, FatihConfig::default());
    system.run(&mut net, SimTime::from_secs(60));

    assert!(
        !system.excluded_segments().is_empty(),
        "no response happened"
    );
    for seg in system.excluded_segments() {
        assert!(seg.contains(evil1), "excluded innocent segment {seg}");
    }
    // After the response, deliveries keep flowing without the attacker.
    let before = net.ground_truth().delivered;
    net.run_until(net.now() + SimTime::from_secs(5), |_| {});
    let after = net.ground_truth().delivered;
    assert!(after > before + 1000, "traffic stalled after response");
}
