//! Review probe: does a crash-restarted router's route epoch stay in
//! lockstep with the rest of the fabric?

use fatih::net::runtime::{
    ChurnAction, ChurnEvent, FlowSpec, LiveConfig, LiveDeployment, LiveSpec,
};
use fatih::net::transport::LoopbackHub;
use fatih::topology::{builtin, RouterId};
use std::time::Duration;

#[test]
fn restarted_router_stays_in_epoch_lockstep() {
    let topo = builtin::ring(6);
    let ids: Vec<RouterId> = topo.routers().collect();
    let spec = LiveSpec {
        flows: vec![
            FlowSpec::new(ids[0], ids[3], 800, Duration::from_millis(2)),
            // The crash-restart router itself sources a monitored flow.
            FlowSpec::new(ids[4], ids[1], 800, Duration::from_millis(2)),
        ],
        churn: vec![
            ChurnEvent {
                at: Duration::from_millis(120),
                actor: ids[4],
                action: ChurnAction::Crash,
            },
            ChurnEvent {
                at: Duration::from_millis(320),
                actor: ids[3],
                action: ChurnAction::ReportDown(ids[4]),
            },
            ChurnEvent {
                at: Duration::from_millis(520),
                actor: ids[4],
                action: ChurnAction::Restart,
            },
        ],
        ..LiveSpec::default()
    };
    let cfg = LiveConfig {
        tau: Duration::from_millis(200),
        exchange_budget: Duration::from_millis(100),
        maturity_lag: Duration::from_millis(50),
        rounds: 10,
        ..LiveConfig::default()
    };
    let outcome = LiveDeployment::run(&topo, &spec, &cfg, LoopbackHub::group(&ids));

    // Untapped drains should stop once reconvergence settles. If the
    // restarted router's epoch never realigns, stale-epoch drains keep
    // accumulating through the last (long-settled) rounds.
    let m = &outcome.round_metrics;
    let n = m.len();
    let tail_untapped =
        m[n - 1].counter("net.untapped_drained") - m[n - 3].counter("net.untapped_drained");
    println!(
        "untapped per round (cumulative): {:?}",
        m.iter()
            .map(|s| s.counter("net.untapped_drained"))
            .collect::<Vec<_>>()
    );
    println!("suspicions: {:?}", outcome.suspicions);
    assert_eq!(
        tail_untapped, 0,
        "stale-epoch drains continued through the final rounds: epochs diverged"
    );
    assert!(
        outcome.suspicions.is_empty(),
        "crash-restart framed honest routers: {:?}",
        outcome.suspicions
    );
}
