//! Observability invariants of the live runtime under chaos.
//!
//! A chaos-wrapped Abilene deployment with a mid-path dropper must leave
//! a trace journal that is *consistent with* the metrics registry — the
//! per-kind `recorded` totals (which survive ring overwrite) must equal
//! the corresponding counters — and the journal's two export formats must
//! hold up: JSONL round-trips to an identical journal, and the
//! chrome://tracing export parses as a JSON array with one entry per
//! event.

use fatih::net::runtime::{DropperSpec, FlowSpec, LiveConfig, LiveDeployment, LiveSpec};
use fatih::net::{ChaosTransport, UdpNet};
use fatih::obs::{JsonValue, TraceJournal, TraceKind};
use fatih::topology::{builtin, RouterId};
use std::time::Duration;

/// One chaos Abilene run shared by every assertion below.
fn chaos_run() -> fatih::net::runtime::LiveOutcome {
    let topo = builtin::abilene();
    let ids: Vec<RouterId> = topo.routers().collect();
    let routes = topo.link_state_routes();
    // A long routed flow with a mid-path dropper, so accusations happen.
    let (src, dst) = routes
        .all_paths()
        .filter(|p| p.routers().len() >= 4)
        .map(|p| (p.routers()[0], *p.routers().last().unwrap()))
        .next()
        .expect("abilene has a 4-router path");
    let path = routes.path(src, dst).unwrap();
    let dropper = path.routers()[path.len() / 2];
    let spec = LiveSpec {
        flows: vec![FlowSpec::new(src, dst, 1000, Duration::from_millis(2))],
        droppers: vec![DropperSpec {
            router: dropper,
            rate: 0.3,
            seed: 42,
            active_from: 0,
        }],
        ..LiveSpec::default()
    };
    let cfg = LiveConfig {
        tau: Duration::from_millis(200),
        exchange_budget: Duration::from_millis(120),
        maturity_lag: Duration::from_millis(50),
        rounds: 2,
        // Keep the run steady-state: no conviction-driven rerouting, so
        // the counter/trace parity below covers the full accusation flow.
        response: false,
        ..LiveConfig::default()
    };
    let transports: Vec<_> = UdpNet::bind_group(&ids)
        .expect("bind loopback sockets")
        .into_iter()
        .enumerate()
        .map(|(i, t)| ChaosTransport::control(t, 0.05, 0.02, 9000 + i as u64))
        .collect();
    LiveDeployment::run(&topo, &spec, &cfg, transports)
}

#[test]
fn trace_journal_agrees_with_metrics_and_exports_round_trip() {
    let outcome = chaos_run();

    // The run must have done real work and traced it.
    assert!(outcome.stats.data_delivered > 0, "no traffic delivered");
    assert!(!outcome.trace.is_empty(), "trace journal is empty");
    assert!(
        outcome.trace.recorded(TraceKind::PacketTap) > 0,
        "no packet taps traced"
    );
    assert!(
        outcome.trace.recorded(TraceKind::AccusationRaised) > 0,
        "dropper raised no accusations"
    );

    // Per-kind recorded totals survive ring overwrite, so they must equal
    // the registry counters the same code paths incremented.
    let pairs = [
        ("net.accusations_raised", TraceKind::AccusationRaised),
        ("net.alerts_sent", TraceKind::AlertSent),
        ("net.summary_timeouts", TraceKind::SummaryTimeout),
        ("net.digests_resolved", TraceKind::DigestResolved),
        ("net.digest_fallbacks", TraceKind::DigestFallback),
    ];
    for (counter, kind) in pairs {
        assert_eq!(
            outcome.metrics.counter(counter),
            outcome.trace.recorded(kind),
            "counter {counter} disagrees with trace kind {kind:?}"
        );
    }

    // JSONL export is lossless: parsing it back yields the same events
    // and the same per-kind recorded totals.
    let jsonl = outcome.trace.to_jsonl();
    let back = TraceJournal::from_jsonl(&jsonl).expect("JSONL parses");
    assert_eq!(
        back.events(),
        outcome.trace.events(),
        "JSONL round trip changed the events"
    );
    for &kind in TraceKind::ALL {
        assert_eq!(
            back.recorded(kind),
            outcome.trace.recorded(kind),
            "JSONL round trip changed recorded({kind:?})"
        );
    }

    // The chrome://tracing export is a traceEvents array with one entry
    // per event, each carrying the trace-event-format required fields.
    let chrome = outcome.trace.to_chrome_trace();
    let parsed = JsonValue::parse(&chrome).expect("chrome trace parses");
    let entries = parsed
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("chrome trace has a traceEvents array");
    assert_eq!(entries.len(), outcome.trace.len());
    for e in entries {
        assert!(e.get("ph").and_then(JsonValue::as_str).is_some());
        assert!(e.get("name").and_then(JsonValue::as_str).is_some());
        assert!(e.get("ts").is_some());
        assert!(e.get("pid").and_then(JsonValue::as_u64).is_some());
        assert!(e.get("tid").is_some());
    }

    // Per-round snapshots are cumulative, so counters are monotone across
    // rounds and bounded by the final snapshot.
    let mut prev = 0;
    for snap in &outcome.round_metrics {
        let sent = snap.counter("net.frames_sent");
        assert!(sent >= prev, "per-round frames_sent went backwards");
        prev = sent;
    }
    assert!(outcome.metrics.counter("net.frames_sent") >= prev);
}
