//! Live conviction-response and topology-churn scenarios over real UDP.
//!
//! The in-crate runtime tests cover the response loop on loopback hubs;
//! these two runs exercise it over real sockets, and combine it with the
//! chaos transport's scheduled flap windows — a *physical* outage paired
//! with its routing announcement, the way a real flap presents.

use fatih::net::runtime::{
    ChurnAction, ChurnEvent, DropperSpec, FlowSpec, LiveConfig, LiveDeployment, LiveSpec,
};
use fatih::net::{ChaosTransport, FlapWindow, Transport, UdpNet};
use fatih::protocols::spec::SpecCheck;
use fatih::topology::{builtin, RouterId};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

fn cfg(rounds: u64) -> LiveConfig {
    LiveConfig {
        tau: Duration::from_millis(200),
        exchange_budget: Duration::from_millis(120),
        maturity_lag: Duration::from_millis(50),
        rounds,
        ..LiveConfig::default()
    }
}

/// A ring carries one flow past a dropper that activates in round 1. The
/// ends convict it, the exclusion floods, and every router reroutes the
/// flow the long way around — after which the dropper sees no transit
/// traffic at all, and nobody else is ever accused.
#[test]
fn conviction_rerouting_recovers_over_udp() {
    let topo = builtin::ring(8);
    let ids: Vec<RouterId> = topo.routers().collect();
    // Lowest-id tie-break routes 0 -> 4 via 1, 2, 3.
    let spec = LiveSpec {
        flows: vec![FlowSpec::new(
            ids[0],
            ids[4],
            1000,
            Duration::from_millis(2),
        )],
        droppers: vec![DropperSpec {
            router: ids[2],
            rate: 0.4,
            seed: 11,
            active_from: 1,
        }],
        ..LiveSpec::default()
    };
    let transports = UdpNet::bind_group(&ids).expect("bind loopback sockets");
    let outcome = LiveDeployment::run(&topo, &spec, &cfg(7), transports);

    assert!(outcome.stats.data_dropped > 0, "the dropper never fired");
    let faulty: BTreeSet<RouterId> = [ids[2]].into_iter().collect();
    let check = SpecCheck::evaluate(&outcome.suspicions, &faulty);
    assert!(
        check.is_complete(),
        "dropper escaped: {:?}",
        outcome.suspicions
    );
    assert!(
        check.is_accurate(cfg(7).k + 2),
        "false positives through the transition: {:?}",
        check.false_positives
    );
    assert!(
        outcome.metrics.counter("net.epoch_transitions") >= ids.len() as u64,
        "not every router reconverged"
    );
    // Post-reroute, the dropper is off the path: total drops freeze.
    let m = &outcome.round_metrics;
    assert_eq!(
        m[m.len() - 1].counter("net.data_dropped"),
        m[m.len() - 2].counter("net.data_dropped"),
        "the convicted router still saw transit traffic at the end"
    );
    // And traffic kept flowing on the avoidance route.
    assert!(
        m[m.len() - 2].counter("net.data_delivered") > m[m.len() - 3].counter("net.data_delivered"),
        "delivery did not recover after the reroute"
    );
}

/// A physical link outage with its routing announcement: the chaos shim
/// swallows data frames on the flapped link over a scheduled window while
/// the churn script announces LinkDown/LinkUp at the window's edges.
/// Traffic reroutes away before validation resumes, so the outage never
/// frames the (honest) routers on the flapped link: zero suspicions.
#[test]
fn announced_flap_window_never_accuses() {
    let topo = builtin::ring(6);
    let ids: Vec<RouterId> = topo.routers().collect();
    // Lowest-id tie-break routes 0 -> 3 via 1, 2: flap the 1-2 link.
    let ms = Duration::from_millis;
    let spec = LiveSpec {
        flows: vec![FlowSpec::new(ids[0], ids[3], 800, Duration::from_millis(2))],
        churn: vec![
            ChurnEvent {
                at: ms(400),
                actor: ids[1],
                action: ChurnAction::LinkDown(ids[2]),
            },
            ChurnEvent {
                at: ms(1000),
                actor: ids[1],
                action: ChurnAction::LinkUp(ids[2]),
            },
        ],
        ..LiveSpec::default()
    };
    let epoch = Instant::now();
    let transports: Vec<_> = UdpNet::bind_group(&ids)
        .expect("bind loopback sockets")
        .into_iter()
        .map(|t| {
            let local = t.local();
            let mut chaos = ChaosTransport::control(t, 0.0, 0.0, 7);
            if local == ids[1] {
                chaos = chaos.with_flaps(vec![FlapWindow::link(ids[2], ms(400), ms(1000))]);
            }
            chaos.set_flap_epoch(epoch);
            chaos
        })
        .collect();
    let outcome = LiveDeployment::run(&topo, &spec, &cfg(7), transports);

    assert!(
        outcome.suspicions.is_empty(),
        "an announced flap framed an honest router: {:?}",
        outcome.suspicions
    );
    assert!(outcome.stats.data_delivered > 0, "traffic stopped");
    assert!(
        outcome.metrics.counter("net.epoch_transitions") >= ids.len() as u64,
        "the flap announcements never triggered a reconvergence"
    );
}
