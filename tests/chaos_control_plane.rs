//! Chaos harness for the fault-injected control plane: sweeps of
//! seed-driven [`FaultPlan`]s against the transport-backed Πk+2 rounds
//! and the full Fatih control loop.
//!
//! The properties under test are the failure-detector guarantees of
//! §4.2.2 *in the presence of environmental faults* (§2.2.1's benign
//! class):
//!
//! * **Accuracy** — control-plane loss, duplication, reordering and
//!   corruption must never cause a correct router to be accused: the
//!   ack/retransmit transport absorbs them, and scheduled outages (link
//!   flaps, crash–restarts) are exonerated as locally-observable benign
//!   events.
//! * **Completeness** — a router that maliciously drops data traffic is
//!   still flagged once the faults quiesce, and a router that withholds
//!   its summaries past the retry budget is flagged *by that refusal*
//!   (timeout-as-accusation).

use fatih::crypto::KeyStore;
use fatih::protocols::fatih_system::{FatihConfig, FatihSystem};
use fatih::protocols::pik2::{Pik2Config, Pik2Detector, RoundExchange};
use fatih::protocols::spec::SpecCheck;
use fatih::protocols::transport::{ReliableTransport, TransportConfig};
use fatih::protocols::ReportFault;
use fatih::sim::{Attack, FaultPlan, LinkFaults, Network, SimTime};
use fatih::topology::{builtin, RouterId, Topology};
use std::collections::BTreeSet;

fn keystore_for(topo: &Topology) -> KeyStore {
    let mut ks = KeyStore::with_seed(17);
    for r in topo.routers() {
        ks.register(r.into());
    }
    ks
}

/// Advances the simulation in 10 ms slices, pumping the transport and
/// feeding the exchange, until it settles or `budget` elapses.
fn drive_exchange(
    net: &mut Network,
    det: &mut Pik2Detector,
    transport: &mut ReliableTransport,
    exch: &mut RoundExchange,
    budget: SimTime,
) {
    let deadline = net.now() + budget;
    while net.now() < deadline && !exch.is_settled() {
        let mut t = net.now() + SimTime::from_ms(10);
        if t > deadline {
            t = deadline;
        }
        net.run_until(t, |ev| det.observe(ev));
        transport.pump(net);
        for msg in transport.take_inbox() {
            det.exchange_message(exch, &msg);
        }
        for ev in transport.take_events() {
            det.exchange_event(exch, &ev);
        }
    }
}

/// Seed-derived probabilistic faults, bounded so a 10-attempt transport
/// practically never exhausts (worst per-attempt round-trip failure at
/// 14% symmetric loss over 2 hops ≈ 0.45; 0.45¹⁰ ≈ 3·10⁻⁴).
fn probabilistic_faults(seed: u64) -> LinkFaults {
    LinkFaults {
        loss: 0.02 + (seed % 7) as f64 * 0.02,
        duplicate: (seed % 5) as f64 * 0.02,
        corrupt: (seed % 3) as f64 * 0.015,
        reorder: (seed % 4) as f64 * 0.02,
        reorder_delay: SimTime::from_ms(1 + seed % 15),
    }
}

/// 20 fault seeds of pure message-level chaos (loss/dup/corrupt/reorder
/// on every link): the attacker is always caught and no correct router is
/// ever accused.
#[test]
fn twenty_seeds_of_message_chaos_keep_accuracy_and_completeness() {
    for seed in 0..20u64 {
        let topo = builtin::line(6);
        let ids: Vec<RouterId> = (0..6)
            .map(|i| topo.router_by_name(&format!("n{i}")).unwrap())
            .collect();
        let ks = keystore_for(&topo);
        let mut net = Network::new(topo, seed);
        net.set_fault_plan(Some(
            FaultPlan::new(seed).with_default_link_faults(probabilistic_faults(seed)),
        ));
        let mut det = Pik2Detector::new(net.routes(), ks, Pik2Config::default());
        let mut transport = ReliableTransport::new(TransportConfig {
            max_attempts: 10,
            ..TransportConfig::default()
        });
        let flow = net.add_cbr_flow(
            ids[0],
            ids[5],
            1000,
            SimTime::from_ms(2),
            SimTime::ZERO,
            None,
        );
        net.set_attacks(ids[3], vec![Attack::drop_flows([flow], 0.3)]);

        let end = SimTime::from_secs(5);
        net.run_until(end, |ev| det.observe(ev));
        let mut exch = det.begin_round(end, 1, &mut net, &mut transport);
        drive_exchange(
            &mut net,
            &mut det,
            &mut transport,
            &mut exch,
            SimTime::from_secs(4),
        );
        let sus = det.finish_round(exch);

        let faulty: BTreeSet<RouterId> = [ids[3]].into_iter().collect();
        let check = SpecCheck::evaluate(&sus, &faulty);
        assert!(
            check.is_complete(),
            "seed {seed}: attacker escaped under message chaos: {sus:?}"
        );
        assert!(
            check.is_accurate(3),
            "seed {seed}: correct router accused: {:?}",
            check.false_positives
        );
    }
}

/// 20 seeds of transient chaos — randomized per-link fault rates plus
/// link flaps and a possible crash–restart, all quiescing by t = 10 s —
/// against the full Fatih loop. Scheduled outages are exonerated, so the
/// exclusion set only ever names segments containing the attacker, and
/// the attacker is flagged once the faults die down.
#[test]
fn transient_chaos_quiesces_and_attacker_is_still_flagged() {
    for seed in 100..120u64 {
        let topo = builtin::line(6);
        let ids: Vec<RouterId> = (0..6)
            .map(|i| topo.router_by_name(&format!("n{i}")).unwrap())
            .collect();
        let ks = keystore_for(&topo);
        let mut net = Network::new(topo, seed);
        let plan = FaultPlan::random_transient(seed, net.topology(), SimTime::from_secs(10));
        assert!(plan.quiesced_after() <= SimTime::from_secs(10));
        net.set_fault_plan(Some(plan));
        let flow = net.add_cbr_flow(
            ids[0],
            ids[5],
            1000,
            SimTime::from_ms(2),
            SimTime::ZERO,
            None,
        );
        net.set_attacks(ids[3], vec![Attack::drop_flows([flow], 0.35)]);
        let mut system = FatihSystem::new(
            &net,
            ks,
            FatihConfig {
                transport: TransportConfig {
                    max_attempts: 10,
                    ..TransportConfig::default()
                },
                ..FatihConfig::default()
            },
        );
        system.run(&mut net, SimTime::from_secs(30));

        assert!(
            system
                .excluded_segments()
                .iter()
                .any(|seg| seg.contains(ids[3])),
            "seed {seed}: attacker never flagged after faults quiesced: {:?}",
            system.timeline()
        );
        for seg in system.excluded_segments() {
            assert!(
                seg.contains(ids[3]),
                "seed {seed}: correct routers accused: {seg}"
            );
        }
    }
}

/// A router that persistently withholds its summaries is itself flagged
/// (timeout-as-accusation), across seeds of background control loss —
/// and nobody else is.
#[test]
fn persistent_summary_withholder_is_flagged_across_seeds() {
    for seed in 200..220u64 {
        let topo = builtin::line(4);
        let ids: Vec<RouterId> = (0..4)
            .map(|i| topo.router_by_name(&format!("n{i}")).unwrap())
            .collect();
        let ks = keystore_for(&topo);
        let mut net = Network::new(topo, seed);
        net.set_fault_plan(Some(FaultPlan::new(seed).with_default_link_faults(
            LinkFaults {
                loss: 0.10,
                ..LinkFaults::default()
            },
        )));
        let mut det = Pik2Detector::new(net.routes(), ks, Pik2Config::default());
        det.set_report_fault(ids[0], ReportFault::Silent);
        let mut transport = ReliableTransport::new(TransportConfig {
            max_attempts: 10,
            ..TransportConfig::default()
        });
        net.add_cbr_flow(
            ids[0],
            ids[3],
            1000,
            SimTime::from_ms(2),
            SimTime::ZERO,
            None,
        );
        net.add_cbr_flow(
            ids[3],
            ids[0],
            800,
            SimTime::from_ms(3),
            SimTime::ZERO,
            None,
        );

        let end = SimTime::from_secs(5);
        net.run_until(end, |ev| det.observe(ev));
        let mut exch = det.begin_round(end, 1, &mut net, &mut transport);
        drive_exchange(
            &mut net,
            &mut det,
            &mut transport,
            &mut exch,
            SimTime::from_secs(4),
        );
        let sus = det.finish_round(exch);

        let faulty: BTreeSet<RouterId> = [ids[0]].into_iter().collect();
        let check = SpecCheck::evaluate(&sus, &faulty);
        assert!(
            check.is_complete(),
            "seed {seed}: withholder escaped: {sus:?}"
        );
        assert!(
            check.is_accurate(3),
            "seed {seed}: withholding blamed on others: {:?}",
            check.false_positives
        );
    }
}

/// Duplicate and reordered control deliveries never double-apply: a
/// clean data plane with heavily duplicated/reordered control messages
/// yields a clean verdict across seeds.
#[test]
fn duplication_and_reordering_alone_accuse_nobody() {
    for seed in 300..310u64 {
        let topo = builtin::line(5);
        let ids: Vec<RouterId> = (0..5)
            .map(|i| topo.router_by_name(&format!("n{i}")).unwrap())
            .collect();
        let ks = keystore_for(&topo);
        let mut net = Network::new(topo, seed);
        net.set_fault_plan(Some(FaultPlan::new(seed).with_default_link_faults(
            LinkFaults {
                duplicate: 0.5,
                reorder: 0.4,
                reorder_delay: SimTime::from_ms(25),
                ..LinkFaults::default()
            },
        )));
        let mut det = Pik2Detector::new(net.routes(), ks, Pik2Config::default());
        let mut transport = ReliableTransport::new(TransportConfig::default());
        net.add_cbr_flow(
            ids[0],
            ids[4],
            1000,
            SimTime::from_ms(2),
            SimTime::ZERO,
            None,
        );

        let end = SimTime::from_secs(5);
        net.run_until(end, |ev| det.observe(ev));
        let mut exch = det.begin_round(end, 1, &mut net, &mut transport);
        drive_exchange(
            &mut net,
            &mut det,
            &mut transport,
            &mut exch,
            SimTime::from_secs(4),
        );
        let sus = det.finish_round(exch);
        assert!(
            sus.is_empty(),
            "seed {seed}: duplication/reordering caused accusations: {sus:?}"
        );
    }
}
