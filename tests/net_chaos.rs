//! Chaos testing of the live runtime over real loopback UDP sockets.
//!
//! Every router's transport is wrapped in a seeded chaos shim that drops
//! and duplicates control frames (summaries, acks, alerts) on the wire.
//! The reliable-delivery layer must absorb that — retransmitting until
//! acked, deduplicating by (source, sequence) — so that across many seeds
//! the live deployment reaches exactly the verdicts the simulator reaches
//! under the same fault plan: the dropper's segments suspected
//! (completeness), no correct-only segment accused (accuracy).

use fatih::net::runtime::{DropperSpec, FlowSpec, LiveConfig, LiveDeployment, LiveSpec};
use fatih::net::{ChaosTransport, UdpNet};
use fatih::protocols::spec::SpecCheck;
use fatih::topology::{builtin, RouterId};
use std::collections::BTreeSet;
use std::time::Duration;

/// Ten seeds of control-plane chaos over real UDP: same accuracy and
/// completeness as the in-sim chaos runs (tests/chaos_control_plane.rs).
#[test]
fn udp_chaos_seeds_keep_verdicts() {
    let topo = builtin::line(6);
    let ids: Vec<RouterId> = topo.routers().collect();
    let faulty: BTreeSet<RouterId> = [ids[3]].into_iter().collect();

    for seed in 0u64..10 {
        // Same fault-rate schedule as the simulator's chaos suite.
        let loss = 0.02 + (seed % 7) as f64 * 0.02;
        let duplicate = (seed % 5) as f64 * 0.02;

        let spec = LiveSpec {
            flows: vec![FlowSpec::new(
                ids[0],
                ids[5],
                1000,
                Duration::from_millis(2),
            )],
            droppers: vec![DropperSpec {
                router: ids[3],
                rate: 0.3,
                seed,
                active_from: 0,
            }],
            ..LiveSpec::default()
        };
        let cfg = LiveConfig {
            tau: Duration::from_millis(200),
            exchange_budget: Duration::from_millis(120),
            maturity_lag: Duration::from_millis(50),
            rounds: 2,
            // Verdict parity with the simulator: leave the response loop
            // off so convictions accumulate instead of rerouting.
            response: false,
            ..LiveConfig::default()
        };
        let transports: Vec<_> = UdpNet::bind_group(&ids)
            .expect("bind loopback sockets")
            .into_iter()
            .enumerate()
            .map(|(i, t)| ChaosTransport::control(t, loss, duplicate, seed * 1000 + i as u64))
            .collect();

        let outcome = LiveDeployment::run(&topo, &spec, &cfg, transports);
        assert!(
            outcome.stats.data_delivered > 0,
            "seed {seed}: no traffic delivered"
        );
        let check = SpecCheck::evaluate(&outcome.suspicions, &faulty);
        assert!(
            check.is_complete(),
            "seed {seed} (loss {loss:.2}, dup {duplicate:.2}): dropper escaped; \
             suspicions: {:?}",
            outcome.suspicions
        );
        assert!(
            check.is_accurate(cfg.k + 2),
            "seed {seed} (loss {loss:.2}, dup {duplicate:.2}): false positives: {:?}",
            check.false_positives
        );
    }
}
