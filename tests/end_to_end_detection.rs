//! Cross-crate integration: the full detection pipeline — simulator,
//! monitors, protocols, spec evaluation — on randomized topologies and
//! adversaries.

use fatih::crypto::KeyStore;
use fatih::protocols::pi2::{Pi2Config, Pi2Detector};
use fatih::protocols::pik2::{Pik2Config, Pik2Detector};
use fatih::protocols::spec::SpecCheck;
use fatih::protocols::{Policy, Thresholds};
use fatih::sim::{Attack, AttackKind, Network, SimTime, VictimFilter};
use fatih::topology::{builtin, RouterId, Topology};
use std::collections::BTreeSet;

fn keystore_for(topo: &Topology) -> KeyStore {
    let mut ks = KeyStore::with_seed(99);
    for r in topo.routers() {
        ks.register(r.into());
    }
    ks
}

/// Picks a transit router (degree ≥ 2 and interior to some routed path).
fn pick_transit(topo: &Topology) -> Option<(RouterId, RouterId, RouterId)> {
    let routes = topo.link_state_routes();
    for p in routes.all_paths() {
        if p.len() >= 4 {
            let routers = p.routers();
            return Some((p.source(), routers[routers.len() / 2], p.sink()));
        }
    }
    None
}

#[test]
fn both_protocols_catch_a_dropper_on_random_topologies() {
    for seed in 0..5u64 {
        let topo = builtin::random_connected(10, 6, seed);
        let Some((src, evil, dst)) = pick_transit(&topo) else {
            continue; // too meshy: no 4-hop path; skip this seed
        };
        let ks = keystore_for(&topo);
        let mut net = Network::new(topo, seed);
        let mut pi2 = Pi2Detector::new(
            net.routes(),
            ks.clone(),
            Pi2Config {
                use_consensus: false, // identical decisions, much faster
                ..Pi2Config::default()
            },
        );
        let mut pik2 = Pik2Detector::new(net.routes(), ks, Pik2Config::default());
        let flow = net.add_cbr_flow(src, dst, 1000, SimTime::from_ms(2), SimTime::ZERO, None);
        net.set_attacks(evil, vec![Attack::drop_flows([flow], 0.4)]);

        let end = SimTime::from_secs(5);
        net.run_until(end, |ev| {
            pi2.observe(ev);
            pik2.observe(ev);
        });
        let faulty: BTreeSet<RouterId> = [evil].into_iter().collect();

        let sus2 = pi2.end_round(end);
        let check2 = SpecCheck::evaluate(&sus2, &faulty);
        assert!(check2.is_complete(), "seed {seed}: Π2 missed the dropper");
        assert!(
            check2.is_accurate(2),
            "seed {seed}: Π2 inaccurate: {:?}",
            check2.false_positives
        );

        let susk = pik2.end_round(end);
        let checkk = SpecCheck::evaluate(&susk, &faulty);
        assert!(checkk.is_complete(), "seed {seed}: Πk+2 missed the dropper");
        assert!(
            checkk.is_accurate(3),
            "seed {seed}: Πk+2 inaccurate: {:?}",
            checkk.false_positives
        );
    }
}

#[test]
fn no_attack_means_no_suspicion_on_random_topologies() {
    for seed in 0..5u64 {
        let topo = builtin::random_connected(10, 6, seed);
        let ks = keystore_for(&topo);
        let ids: Vec<RouterId> = topo.routers().collect();
        let mut net = Network::new(topo, seed);
        let mut pik2 = Pik2Detector::new(net.routes(), ks, Pik2Config::default());
        // A handful of crossing flows.
        for i in 0..4 {
            let s = ids[(i * 3) % ids.len()];
            let d = ids[(i * 5 + 7) % ids.len()];
            if s != d {
                net.add_cbr_flow(
                    s,
                    d,
                    800,
                    SimTime::from_ms(3 + i as u64),
                    SimTime::ZERO,
                    None,
                );
            }
        }
        let end = SimTime::from_secs(5);
        net.run_until(end, |ev| pik2.observe(ev));
        let sus = pik2.end_round(end);
        assert!(sus.is_empty(), "seed {seed}: false positives {sus:?}");
    }
}

#[test]
fn misrouting_is_detected_as_content_violation() {
    // §2.2.1: misrouting is an instance of loss + fabrication; the segment
    // that loses the packets fails content validation.
    let topo = builtin::ring(6);
    let ids: Vec<RouterId> = topo.routers().collect();
    let ks = keystore_for(&topo);
    let mut net = Network::new(topo, 3);
    let mut det = Pik2Detector::new(net.routes(), ks, Pik2Config::default());
    let flow = net.add_cbr_flow(
        ids[0],
        ids[2],
        1000,
        SimTime::from_ms(2),
        SimTime::ZERO,
        None,
    );
    net.set_attacks(
        ids[1],
        vec![Attack {
            victims: VictimFilter::flows([flow]),
            kind: AttackKind::Misroute { fraction: 0.5 },
        }],
    );
    let end = SimTime::from_secs(5);
    net.run_until(end, |ev| det.observe(ev));
    let sus = det.end_round(end);
    let faulty: BTreeSet<RouterId> = [ids[1]].into_iter().collect();
    let check = SpecCheck::evaluate(&sus, &faulty);
    assert!(check.is_complete(), "misrouter escaped: {sus:?}");
    assert!(check.is_accurate(3));
}

#[test]
fn delay_attack_needs_timeliness_tolerant_policy() {
    // A pure delayer passes content validation across rounds eventually
    // (packets do arrive) but trips the order policy.
    let topo = builtin::line(4);
    let ids: Vec<RouterId> = topo.routers().collect();
    let ks = keystore_for(&topo);
    let mut net = Network::new(topo, 4);
    let mut order_det = Pik2Detector::new(
        net.routes(),
        ks,
        Pik2Config {
            policy: Policy::Order,
            thresholds: Thresholds {
                loss: 1_000_000,
                reorder: 0,
            },
            ..Pik2Config::default()
        },
    );
    let flow = net.add_cbr_flow(
        ids[0],
        ids[3],
        1000,
        SimTime::from_ms(2),
        SimTime::ZERO,
        None,
    );
    net.set_attacks(
        ids[1],
        vec![Attack {
            victims: VictimFilter::flows([flow]),
            kind: AttackKind::Delay {
                extra: SimTime::from_ms(9),
                fraction: 0.25,
            },
        }],
    );
    let end = SimTime::from_secs(5);
    net.run_until(end, |ev| order_det.observe(ev));
    let sus = order_det.end_round(end);
    let faulty: BTreeSet<RouterId> = [ids[1]].into_iter().collect();
    let check = SpecCheck::evaluate(&sus, &faulty);
    assert!(check.is_complete(), "delayer escaped the order policy");
}

#[test]
fn multi_round_operation_stays_clean_then_detects() {
    // Rounds tick with traffic in flight; the attack begins mid-run and is
    // caught in the first round that covers it.
    let topo = builtin::line(5);
    let ids: Vec<RouterId> = topo.routers().collect();
    let ks = keystore_for(&topo);
    let mut net = Network::new(topo, 5);
    let mut det = Pik2Detector::new(net.routes(), ks, Pik2Config::default());
    let flow = net.add_cbr_flow(
        ids[0],
        ids[4],
        1000,
        SimTime::from_ms(2),
        SimTime::ZERO,
        None,
    );

    let mut detected_round = None;
    for round in 1..=8u64 {
        if round == 4 {
            net.set_attacks(ids[2], vec![Attack::drop_flows([flow], 0.5)]);
        }
        let end = SimTime::from_secs(round * 3);
        net.run_until(end, |ev| det.observe(ev));
        let sus = det.end_round(end);
        if round < 4 {
            assert!(sus.is_empty(), "round {round}: premature suspicion {sus:?}");
        } else if !sus.is_empty() && detected_round.is_none() {
            detected_round = Some(round);
            let faulty: BTreeSet<RouterId> = [ids[2]].into_iter().collect();
            assert!(SpecCheck::evaluate(&sus, &faulty).is_accurate(3));
        }
    }
    assert_eq!(
        detected_round,
        Some(4),
        "attack not caught in its first round"
    );
}
